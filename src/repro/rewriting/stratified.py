"""The stratified-Datalog separator for ``Q_TP`` (appendix, "Additional
comments on non-Datalog-rewritable examples").

For every tiling problem ``TP`` whose rectangular grids cannot be tiled,
the query ``Q_TP`` of Thm 6 — although not Datalog-rewritable over
``V_TP`` when ``TP`` is ``TP*`` (Thm 8) — has a *positive Boolean
combination* rewriting::

    R = Vhelper_C ∨ Vhelper_D ∨ Q*_verify ∨ (Q*_start ∧ ProductTest)

where ``Q*_start``/``Q*_verify`` are the view-schema versions of
``Qstart``/``Qverify`` and ``ProductTest`` checks that ``S`` equals the
product of its projections (expressible in relational algebra, hence in
stratified Datalog).  In particular ``Q_TP*`` always has a PTime
separator.  :class:`StratifiedSeparator` implements ``R`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.terms import variables
from repro.constructions.reduction_thm6 import tile_predicates
from repro.constructions.tiling import TilingProblem


def product_test(view_instance: Instance) -> bool:
    """Whether ``S`` equals the product of its projections.

    Relational algebra (uses difference), hence stratified-Datalog
    expressible but not plain-Datalog monotone.
    """
    s_rows = view_instance.tuples("S")
    left = {x for x, _ in s_rows}
    right = {y for _, y in s_rows}
    return all((x, y) in s_rows for x in left for y in right)


def star_start_query() -> DatalogQuery:
    """``Q*_start``: ``Qstart`` with ``C``/``D`` read off ``S``'s
    projections and the successor/end views."""
    program_rules = []
    x, x2, y, y2, u, v = variables("x x2 y y2 u v")
    program_rules += [
        Rule(Atom("Cs", (x,)), (Atom("S", (x, v)),)),
        Rule(Atom("Ds", (y,)), (Atom("S", (u, y)),)),
        Rule(Atom("As", (x,)), (
            Atom("VXSucc", (x, x2)), Atom("As", (x2,)), Atom("Cs", (x2,)),
        )),
        Rule(Atom("As", (x,)), (
            Atom("VXSucc", (x, x2)), Atom("VXEnd", (x2,)), Atom("Cs", (x2,)),
        )),
        Rule(Atom("Bs", (y,)), (
            Atom("VYSucc", (y, y2)), Atom("Bs", (y2,)), Atom("Ds", (y2,)),
        )),
        Rule(Atom("Bs", (y,)), (
            Atom("VYSucc", (y, y2)), Atom("VYEnd", (y2,)), Atom("Ds", (y2,)),
        )),
        Rule(Atom("Qstart·s", ()), (Atom("As", (x,)), Atom("Bs", (x,)))),
    ]
    return DatalogQuery(
        DatalogProgram(tuple(program_rules)), "Qstart·s", "Q*start"
    )


def star_verify_query(tp: TilingProblem) -> DatalogQuery:
    """``Q*_verify``: the (8)–(11) rules over the view signature."""
    preds = tile_predicates(tp)
    z1, z2, x, y, o = variables("z1 z2 x y o")
    x1, x2, y1, y2 = variables("x1 x2 y1 y2")
    rules = []
    for left in tp.tiles:
        for right in tp.tiles:
            if (left, right) in tp.horizontal:
                continue
            rules.append(Rule(Atom("Qverify·s", ()), (
                Atom("VHA", (z1, z2, x1, x2, y)),
                Atom(f"V{preds[left]}", (z1,)),
                Atom(f"V{preds[right]}", (z2,)),
            )))
    for below, above in (
        (b, a)
        for b in tp.tiles
        for a in tp.tiles
        if (b, a) not in tp.vertical
    ):
        rules.append(Rule(Atom("Qverify·s", ()), (
            Atom("VVA", (z1, z2, x, y1, y2)),
            Atom(f"V{preds[below]}", (z1,)),
            Atom(f"V{preds[above]}", (z2,)),
        )))
    for tile in tp.tiles:
        if tile not in tp.initial:
            rules.append(Rule(Atom("Qverify·s", ()), (
                Atom("VI", (o, x, y, z1)),
                Atom(f"V{preds[tile]}", (z1,)),
            )))
        if tile not in tp.final:
            rules.append(Rule(Atom("Qverify·s", ()), (
                Atom("VF", (x, y, z1)),
                Atom(f"V{preds[tile]}", (z1,)),
            )))
    return DatalogQuery(
        DatalogProgram(tuple(rules)), "Qverify·s", "Q*verify"
    )


@dataclass
class StratifiedSeparator:
    """The appendix's PTime separator ``R`` for ``Q_TP`` over ``V_TP``."""

    tp: TilingProblem

    def __post_init__(self) -> None:
        self._start = star_start_query()
        self._verify = star_verify_query(self.tp)

    def boolean(self, view_instance: Instance) -> bool:
        if view_instance.tuples("VhelperC"):
            return True
        if view_instance.tuples("VhelperD"):
            return True
        if self._verify.boolean(view_instance):
            return True
        return self._start.boolean(view_instance) and product_test(
            view_instance
        )
