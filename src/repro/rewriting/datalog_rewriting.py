"""Datalog rewritings of monotonically determined recursive queries
(Thm 1, Thm 2, and the inverse-rules route of [14]).

Two construction routes:

* :func:`datalog_rewriting` — for CQ views, the de-functionalized
  inverse-rules program ([14]); it computes certain answers, hence is a
  rewriting exactly when the query is monotonically determined.  With
  ``frontier_guard=True`` the appendix's guard-completion yields an FGDL
  program for FGDL queries.
* :func:`backward_rewriting_from_automaton` — the Thm 1 pipeline piece:
  given an automaton satisfying Prop. 7's two inclusions for ``(Q, V)``,
  its backward mapping is a Datalog rewriting.  We expose it so the
  benchmarks can exercise the forward→project→backward loop on concrete
  automata (e.g. the identity-views case, where the forward automaton of
  Prop. 3 itself qualifies).
"""

from __future__ import annotations

from typing import Optional

from repro.core.datalog import DatalogQuery
from repro.core.schema import Schema
from repro.views.view import ViewSet
from repro.views.inverse_rules import inverse_rules_rewriting
from repro.automata.backward import backward_query
from repro.automata.nta import NTA


def datalog_rewriting(
    query: DatalogQuery,
    views: ViewSet,
    frontier_guard: bool = False,
) -> DatalogQuery:
    """A Datalog rewriting over CQ views via inverse rules ([14]).

    The returned program computes, on every view instance, the certain
    answers of ``query`` w.r.t. ``views``; when ``query`` is
    monotonically determined over ``views`` this equals ``Q ∘ V`` and is
    therefore a rewriting.  Certification of monotonic determinacy is
    the caller's concern (see :mod:`repro.determinacy`).
    """
    return inverse_rules_rewriting(
        query, views, frontier_guard=frontier_guard
    )


def datalog_rewriting_certificate(
    query: DatalogQuery,
    views: ViewSet,
    rewriting: DatalogQuery,
    trials: int = 25,
    seed: int = 0,
) -> dict:
    """A certificate for an inverse-rules rewriting.

    Exact equivalence of two recursive programs is undecidable, so the
    claim is a seeded ``rewriting_sample``: the independent checker
    replays ``R(V(I)) = Q(I)`` with naive evaluation on the same
    deterministic instance stream.  The certificate is honest about its
    strength (``meta.note``).
    """
    from repro.certify.emit import certificate, claim_rewriting_sample

    return certificate(
        [claim_rewriting_sample(
            query, views, rewriting, trials=trials, seed=seed
        )],
        meta={
            "method": "inverse rules [14]",
            "note": "sampled equivalence (exact Datalog equivalence "
            "is undecidable)",
        },
    )


def backward_rewriting_from_automaton(
    nta: NTA,
    view_schema: Schema,
    name: str = "Q_A",
) -> DatalogQuery:
    """Backward-map an automaton into a Datalog query over the views.

    Correctness contract (Prop. 7): if ``Q`` is homomorphically
    determined over ``V`` — which Lemma 4 grants whenever it is
    monotonically determined — and ``nta`` accepts codes of all view
    images of approximations while everything it accepts receives a
    homomorphism from some view image, then the result is a rewriting.
    """
    return backward_query(nta, view_schema, name=name)


def verify_rewriting_on_instances(
    query: DatalogQuery,
    views: ViewSet,
    rewriting: DatalogQuery,
    instances,
) -> Optional[object]:
    """First instance where ``rewriting(V(I)) ≠ Q(I)``, or None."""
    for instance in instances:
        expected = query.evaluate(instance)
        got = rewriting.evaluate(views.image(instance))
        if expected != got:
            return instance
    return None
