"""Structured instance generators.

Random instances (``random_instances``) miss structured corner cases —
long chains, cycles, grids, trees — that recursive queries care about.
The generators here complement them in the verification harness and the
benchmarks; ``structured_instances`` interleaves all families over a
schema's binary/unary relations.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.instance import Instance
from repro.core.schema import Schema


def chain(pred: str, length: int, offset: int = 0) -> Instance:
    out = Instance()
    for i in range(length):
        out.add_tuple(pred, (offset + i, offset + i + 1))
    return out


def cycle(pred: str, length: int, offset: int = 0) -> Instance:
    out = Instance()
    for i in range(length):
        out.add_tuple(
            pred, (offset + i, offset + (i + 1) % length)
        )
    return out


def binary_tree(pred: str, depth: int) -> Instance:
    out = Instance()
    for node in range(1, 2 ** depth):
        out.add_tuple(pred, (node, 2 * node))
        out.add_tuple(pred, (node, 2 * node + 1))
    return out


def grid(pred: str, n: int, m: int) -> Instance:
    out = Instance()
    for i in range(n):
        for j in range(m):
            if i + 1 < n:
                out.add_tuple(pred, ((i, j), (i + 1, j)))
            if j + 1 < m:
                out.add_tuple(pred, ((i, j), (i, j + 1)))
    return out


def structured_instances(
    schema: Schema,
    seed: int = 0,
    sizes: tuple = (2, 4, 7),
) -> Iterator[Instance]:
    """Chains/cycles/trees/grids over each binary relation, with unary
    relations sprinkled pseudo-randomly over the active domain."""
    rng = random.Random(seed)
    binary = sorted(p for p in schema.names() if schema.arity(p) == 2)
    unary = sorted(p for p in schema.names() if schema.arity(p) == 1)
    if not binary:
        return
    for size in sizes:
        for pred in binary:
            for base in (
                chain(pred, size),
                cycle(pred, size),
                binary_tree(pred, max(2, size // 2)),
                grid(pred, max(2, size // 2), 2),
            ):
                inst = base.copy()
                domain = sorted(inst.active_domain(), key=repr)
                for upred in unary:
                    for element in domain:
                        if rng.random() < 0.3:
                            inst.add_tuple(upred, (element,))
                # occasionally add a second binary relation's edges
                for other in binary:
                    if other != pred and rng.random() < 0.5:
                        for row in chain(other, size // 2).facts():
                            inst.add(row)
                yield inst


def check_rewriting_structured(
    query, views, rewriting, schema: Schema = None, seed: int = 0
):
    """Like ``check_rewriting`` but over the structured families."""
    from repro.rewriting.verification import _base_schema

    schema = schema or _base_schema(query, views)
    for inst in structured_instances(schema, seed):
        if rewriting.evaluate(views.image(inst)) != query.evaluate(inst):
            return inst
    return None
