"""Rewritings and separators (§4, §7)."""

from repro.rewriting.forward_backward import (
    NotRewritableError,
    evaluate_rewriting_over_base,
    rewrite_cq,
    rewrite_forward_backward,
)
from repro.rewriting.datalog_rewriting import (
    backward_rewriting_from_automaton,
    datalog_rewriting,
    verify_rewriting_on_instances,
)
from repro.rewriting.separator import (
    CertainAnswerSeparator,
    SmallImageSeparator,
    agree_on_image,
    separator_from_rewriting,
)
from repro.rewriting.verification import (
    check_rewriting,
    check_separator,
    random_instances,
)

__all__ = [
    "NotRewritableError", "evaluate_rewriting_over_base", "rewrite_cq",
    "rewrite_forward_backward", "backward_rewriting_from_automaton",
    "datalog_rewriting", "verify_rewriting_on_instances",
    "CertainAnswerSeparator", "SmallImageSeparator", "agree_on_image",
    "separator_from_rewriting", "check_rewriting", "check_separator",
    "random_instances",
]
