"""Randomized verification of rewritings and separators.

Rewriting equivalence is undecidable in general, so the benchmarks and
the property-based tests validate candidate rewritings the empirical
way: generate many random instances over the base schema, compare
``Q(I)`` with ``R(V(I))``.  The generator is seeded and biased toward
small element pools so joins actually fire.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional, Union

from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.core.ucq import UCQ
from repro.views.view import ViewSet

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]


def random_instances(
    schema: Schema,
    count: int,
    seed: int = 0,
    max_elements: int = 5,
    max_facts_per_relation: int = 6,
) -> Iterator[Instance]:
    """A seeded stream of random instances over ``schema``."""
    rng = random.Random(seed)
    for _ in range(count):
        n = rng.randint(1, max_elements)
        instance = Instance()
        for pred in sorted(schema.names()):
            arity = schema.arity(pred)
            for _ in range(rng.randint(0, max_facts_per_relation)):
                instance.add_tuple(
                    pred, tuple(rng.randrange(n) for _ in range(arity))
                )
        yield instance


def check_rewriting(
    query: QueryLike,
    views: ViewSet,
    rewriting: QueryLike,
    schema: Optional[Schema] = None,
    trials: int = 50,
    seed: int = 0,
) -> Optional[Instance]:
    """First random instance where ``rewriting(V(I)) ≠ Q(I)``, or None."""
    schema = schema or _base_schema(query, views)
    for instance in random_instances(schema, trials, seed):
        if rewriting.evaluate(views.image(instance)) != query.evaluate(
            instance
        ):
            return instance
    return None


def check_separator(
    query: QueryLike,
    views: ViewSet,
    separator: Callable[[Instance], set[tuple]],
    schema: Optional[Schema] = None,
    trials: int = 50,
    seed: int = 0,
) -> Optional[Instance]:
    """First random instance where the separator disagrees, or None."""
    schema = schema or _base_schema(query, views)
    for instance in random_instances(schema, trials, seed):
        if separator(views.image(instance)) != query.evaluate(instance):
            return instance
    return None


def _base_schema(query: QueryLike, views: ViewSet) -> Schema:
    """Infer the base schema from query EDBs and view definitions."""
    preds: dict[str, int] = {}

    def note(pred: str, arity: int) -> None:
        preds.setdefault(pred, arity)

    if isinstance(query, DatalogQuery):
        for rule in query.program.rules:
            idb = query.program.idb_predicates()
            for atom in rule.body:
                if atom.pred not in idb:
                    note(atom.pred, atom.arity)
    else:
        disjuncts = (
            query.disjuncts if isinstance(query, UCQ) else (query,)
        )
        for d in disjuncts:
            for atom in d.atoms:
                note(atom.pred, atom.arity)
    for view in views:
        definition = view.definition
        if isinstance(definition, ConjunctiveQuery):
            atoms_iter = definition.atoms
            for atom in atoms_iter:
                note(atom.pred, atom.arity)
        elif isinstance(definition, UCQ):
            for d in definition.disjuncts:
                for atom in d.atoms:
                    note(atom.pred, atom.arity)
        else:
            idb = definition.program.idb_predicates()
            for rule in definition.program.rules:
                for atom in rule.body:
                    if atom.pred not in idb:
                        note(atom.pred, atom.arity)
    return Schema(preds)
