"""Separators (§2, §7).

A *separator* of ``Q`` w.r.t. ``V`` is any function on view instances
agreeing with ``Q`` on all view images — a rewriting not required to
live in a logic.  The paper's observations:

* Datalog rewritings are PTime separators; UCQ rewritings are AC⁰.
* For Datalog queries and UCQ views there is a separator in NP and one
  in co-NP (every view image is the image of a small instance).
* Theorem 9: no computable time bound covers all separators for Datalog
  queries monotonically determined over Datalog views.

:class:`CertainAnswerSeparator` is the inverse-rules separator (exact
for monotonically determined queries over CQ views, Theorem 10).
:class:`SmallImageSeparator` realizes the NP-style guess-a-preimage
separator for UCQ views by bounded search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as iproduct
from typing import Callable, Union

from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.core.ucq import UCQ
from repro.views.view import ViewSet
from repro.views.inverse_rules import certain_answers
from repro.determinacy.tests import view_definition_expansions, _instantiate
from repro.util.fresh import FreshNames

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]


@dataclass
class CertainAnswerSeparator:
    """Separator computed by the inverse-rules chase (CQ views).

    PTime in the view instance for a fixed query; exact on view images
    of monotonically determined queries (Theorem 10 of the appendix).
    """

    query: DatalogQuery
    views: ViewSet
    calls: int = 0

    def __call__(self, view_instance: Instance) -> set[tuple]:
        self.calls += 1
        return certain_answers(self.query, self.views, view_instance)

    def boolean(self, view_instance: Instance) -> bool:
        return () in self(view_instance)


@dataclass
class SmallImageSeparator:
    """The NP-separator for (U)CQ views: search a small preimage.

    For UCQ views, every view image is the view image of an instance of
    size polynomial in the image (replace each view fact by one expanded
    disjunct).  On input ``J`` we enumerate the candidate preimages
    obtainable by inverting each fact with some disjunct and evaluate
    ``Q`` on each — "guess a preimage, accept if ``Q`` holds" — taking
    the union (for the co-NP variant, the intersection).
    """

    query: QueryLike
    views: ViewSet
    mode: str = "np"  # "np" = union over preimages, "conp" = intersection
    stats: dict = field(default_factory=dict)

    def __call__(self, view_instance: Instance) -> set[tuple]:
        facts = sorted(view_instance.facts(), key=repr)
        options = []
        for fact in facts:
            expansions = view_definition_expansions(
                self.views[fact.pred], max_depth=3
            )
            options.append([(fact, e) for e in expansions])
        answers: set[tuple] = set()
        first = True
        count = 0
        for combo in iproduct(*options):
            fresh = FreshNames("pre")
            candidate = Instance()
            for fact, expansion in combo:
                for atom in _instantiate(expansion, fact.args, fresh):
                    candidate.add(atom)
            count += 1
            result = self.query.evaluate(candidate)
            if self.mode == "np":
                answers |= result
            elif first:
                answers = set(result)
                first = False
            else:
                answers &= result
        self.stats["preimages"] = count
        return answers

    def boolean(self, view_instance: Instance) -> bool:
        return () in self(view_instance)


def separator_from_rewriting(
    rewriting: QueryLike,
) -> Callable[[Instance], set[tuple]]:
    """Wrap a logical rewriting as a separator function."""

    def separator(view_instance: Instance) -> set[tuple]:
        return rewriting.evaluate(view_instance)

    return separator


def agree_on_image(
    query: QueryLike,
    views: ViewSet,
    separator: Callable[[Instance], set[tuple]],
    base_instance: Instance,
) -> bool:
    """Whether the separator matches ``Q`` on one base instance's image."""
    return separator(views.image(base_instance)) == query.evaluate(
        base_instance
    )
