"""repro — monotonic determinacy and rewritability for recursive queries
and views.

A faithful, laptop-scale implementation of the algorithms, decision
procedures and counterexample constructions of *"On Monotonic
Determinacy and Rewritability for Recursive Queries and Views"*
(Benedikt, Kikot, Ostropolski-Nalewaja, Romero — PODS 2020).

Quickstart::

    from repro import *

    q = parse_cq("Q(x) <- R(x,y), S(y)")
    views = ViewSet([
        View("VR", parse_cq("V(x,y) <- R(x,y)")),
        View("VS", parse_cq("V(y) <- S(y)")),
    ])
    result = decide_monotonic_determinacy(q, views)   # exact for CQs
    rewriting = rewrite_forward_backward(q, views)    # the UCQ rewriting

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (
    ANY,
    Atom,
    CanonConst,
    EngineStats,
    collecting,
    ConjunctiveQuery,
    ContainmentResult,
    DatalogProgram,
    DatalogQuery,
    Fact,
    Instance,
    Rule,
    Schema,
    UCQ,
    Variable,
    Verdict,
    approximations,
    cq_contained,
    cq_contained_in_datalog,
    cq_from_instance,
    datalog_contained_bounded,
    datalog_contained_in_ucq,
    find_homomorphism,
    fixpoint,
    has_homomorphism,
    instance_homomorphism,
    instance_maps_into,
    is_normalized,
    normalize,
    parse_cq,
    parse_instance,
    parse_program,
    parse_query,
    parse_ucq,
    ucq_contained,
    variables,
)
from repro.views import (
    View,
    ViewSet,
    atomic_views,
    certain_answers,
    chase_with_inverse_rules,
    inverse_rules_rewriting,
)
from repro.determinacy import (
    CanonicalTest,
    DeterminacyResult,
    canonical_tests,
    check_tests,
    decide_cq_ucq,
    decide_fgdl,
    decide_monotonic_determinacy,
)
from repro.rewriting import (
    CertainAnswerSeparator,
    NotRewritableError,
    check_rewriting,
    check_separator,
    datalog_rewriting,
    rewrite_cq,
    rewrite_forward_backward,
)
from repro.automata import (
    NTA,
    approximations_automaton,
    backward_query,
    datalog_in_ucq_exact,
)
from repro.td import TreeCode, TreeDecomposition, decode, decompose, encode
from repro.games import duplicator_wins, unravel

__version__ = "1.0.0"

__all__ = [
    "ANY", "EngineStats", "collecting",
    "Atom", "CanonConst", "ConjunctiveQuery", "ContainmentResult",
    "DatalogProgram", "DatalogQuery", "Fact", "Instance", "Rule",
    "Schema", "UCQ", "Variable", "Verdict", "approximations",
    "cq_contained", "cq_contained_in_datalog", "cq_from_instance",
    "datalog_contained_bounded", "datalog_contained_in_ucq",
    "find_homomorphism", "fixpoint", "has_homomorphism",
    "instance_homomorphism", "instance_maps_into", "is_normalized",
    "normalize", "parse_cq", "parse_instance", "parse_program",
    "parse_query", "parse_ucq", "ucq_contained", "variables", "View",
    "ViewSet", "atomic_views", "certain_answers",
    "chase_with_inverse_rules", "inverse_rules_rewriting",
    "CanonicalTest", "DeterminacyResult", "canonical_tests",
    "check_tests", "decide_cq_ucq", "decide_fgdl",
    "decide_monotonic_determinacy", "CertainAnswerSeparator",
    "NotRewritableError", "check_rewriting", "check_separator",
    "datalog_rewriting", "rewrite_cq", "rewrite_forward_backward",
    "NTA", "approximations_automaton", "backward_query",
    "datalog_in_ucq_exact", "TreeCode", "TreeDecomposition", "decode",
    "decompose", "encode", "duplicator_wins", "unravel",
    "__version__",
]
