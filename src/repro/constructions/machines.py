"""Deterministic Turing machines and run-string encodings (Thm 9).

Machines run on a fixed-length tape segment (configurations are padded
to a common length), which keeps consecutive configurations aligned —
the property the Datalog consistency-checking rules of
:mod:`repro.constructions.thm9` rely on.

A *run string* follows the paper's format::

    ⊢ w ⊣ c_1 ; c_2 ; ... ; c_n ⊳

with ``⊢ = σInpBegin``, ``⊣ = σInpEnd``, ``; = separator`` and
``⊳ = σRunEnd``.  Each configuration ``c_i`` is the tape content with
the symbol under the head replaced by a composite (state, symbol)
letter.  :func:`encode_run` renders the run as a relational instance
over ``Succ/U_a`` (input segment) and ``Succ'/U'_a`` (run segment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.instance import Instance

LEFT, RIGHT, STAY = -1, 1, 0

MARK_INP_BEGIN = "MInpBegin"
MARK_INP_END = "MInpEnd"
MARK_SEP = "MSep"
MARK_RUN_END = "MRunEnd"


@dataclass(frozen=True)
class Configuration:
    """A machine configuration on a fixed-length tape."""

    state: str
    head: int
    tape: tuple

    def letters(self) -> tuple:
        """The configuration as a string of letters; the head cell is a
        composite ``("q", state, symbol)`` letter."""
        out = []
        for i, symbol in enumerate(self.tape):
            if i == self.head:
                out.append(("q", self.state, symbol))
            else:
                out.append(symbol)
        return tuple(out)


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic single-tape machine on a bounded tape segment."""

    states: tuple
    input_alphabet: tuple
    tape_alphabet: tuple
    blank: str
    start: str
    accept: str
    reject: str
    transitions: dict = field(default_factory=dict)
    # transitions: (state, symbol) -> (state, symbol, move)

    def initial(self, word: tuple, tape_length: int) -> Configuration:
        tape = tuple(word) + tuple(
            self.blank for _ in range(tape_length - len(word))
        )
        return Configuration(self.start, 0, tape)

    def halted(self, config: Configuration) -> bool:
        return config.state in (self.accept, self.reject)

    def step(self, config: Configuration) -> Configuration:
        key = (config.state, config.tape[config.head])
        if key not in self.transitions:
            raise ValueError(f"no transition for {key}")
        state, symbol, move = self.transitions[key]
        tape = list(config.tape)
        tape[config.head] = symbol
        head = config.head + move
        if not 0 <= head < len(tape):
            raise ValueError("head left the bounded tape segment")
        return Configuration(state, head, tuple(tape))

    def run(
        self, word: tuple, tape_length: Optional[int] = None,
        max_steps: int = 100_000,
    ) -> list[Configuration]:
        """The full run (halting machines only; raises past the budget)."""
        tape_length = tape_length or max(len(word) + 1, 2)
        config = self.initial(word, tape_length)
        trace = [config]
        for _ in range(max_steps):
            if self.halted(config):
                return trace
            config = self.step(config)
            trace.append(config)
        raise RuntimeError(f"machine exceeded {max_steps} steps")

    def accepts(self, word: tuple, **kwargs) -> bool:
        return self.run(word, **kwargs)[-1].state == self.accept


def run_string(word: tuple, trace: list[Configuration]) -> list:
    """The run string: markers, input, and configuration letters."""
    out: list = [MARK_INP_BEGIN]
    out.extend(word)
    out.append(MARK_INP_END)
    for i, config in enumerate(trace):
        if i:
            out.append(MARK_SEP)
        out.extend(config.letters())
    out.append(MARK_RUN_END)
    return out


def letter_predicate(letter, primed: bool) -> str:
    """The unary predicate name of a letter (markers are never primed)."""
    if letter in (MARK_INP_BEGIN, MARK_INP_END, MARK_SEP, MARK_RUN_END):
        return letter
    prefix = "Up·" if primed else "U·"
    if isinstance(letter, tuple):
        return f"{prefix}q·{letter[1]}·{letter[2]}"
    return f"{prefix}{letter}"


def encode_run(
    word: tuple,
    trace: list[Configuration],
    machine: Optional["TuringMachine"] = None,
) -> Instance:
    """Relational encoding of a run string.

    Positions are integers.  Letters are carried by binary relations
    ``Letter(p, a)`` (input segment) and ``Letter'(p, a)`` (run
    segment); markers additionally get unary marks.  The input segment
    (up to and including ``σInpEnd``) uses ``Succ`` edges, the rest
    ``Succ'`` (the edge leaving ``σInpEnd`` already belongs to the run
    segment).  When ``machine`` is given, its fixed local tables
    (:func:`machine_tables`) are included — the re-encoding of the
    paper's per-letter unary predicates documented in DESIGN.md §4.
    """
    letters = run_string(word, trace)
    out = Instance()
    inp_end = letters.index(MARK_INP_END)
    for pos, letter in enumerate(letters):
        if letter in (MARK_INP_BEGIN, MARK_INP_END, MARK_SEP, MARK_RUN_END):
            out.add_tuple(letter, (pos,))
        if pos <= inp_end:
            out.add_tuple("Letter", (pos, letter))
        if pos >= inp_end:
            out.add_tuple("Letter·p", (pos, letter))
        if pos + 1 < len(letters):
            succ = "Succ" if pos < inp_end else "Succ·p"
            out.add_tuple(succ, (pos, pos + 1))
    if machine is not None:
        from repro.constructions.thm9 import letter_class_tables

        out.update(machine_tables(machine).facts())
        out.update(letter_class_tables(machine).facts())
    return out


def machine_tables(machine: "TuringMachine") -> Instance:
    """The machine's fixed local tables as relations.

    * ``Step·T(a, b, c, d)`` — in consecutive configurations, the letter
      below ``b`` (with neighbours ``a``, ``c``) must be ``d``;
    * ``Init·T(a, b)`` — the first configuration's head letter for input
      letter ``a``;
    * ``Diff·T(a, b)`` — letter inequality (positive encoding of ≠).
    """
    from repro.constructions.thm9 import _config_letters, _expected_letter

    out = Instance()
    config_letters = _config_letters(machine)
    boundary = [MARK_SEP, MARK_INP_END, MARK_RUN_END]
    window_side = config_letters + boundary
    for a in window_side:
        for b in config_letters:
            for c in window_side:
                heads = sum(
                    1 for x in (a, b, c) if isinstance(x, tuple)
                )
                if heads > 1 or a == MARK_RUN_END or c == MARK_INP_END:
                    continue
                expected = _expected_letter(machine, a, b, c)
                if expected is not None:
                    out.add_tuple("Step·T", (a, b, c, expected))
    for a in machine.input_alphabet:
        out.add_tuple("Init·T", (a, ("q", machine.start, a)))
    everything = config_letters + boundary
    for a in everything:
        for b in everything:
            if a != b:
                out.add_tuple("Diff·T", (a, b))
    return out


def counter_machine(bits: int) -> TuringMachine:
    """A binary up-counter: runs ``Θ(2^bits)`` steps then accepts.

    Input: ``bits`` zeros.  Repeatedly increments the binary number on
    the tape until it overflows, then accepts — a concrete machine with
    exponential running time for the Thm 9 separator experiment.
    """
    # states: scan right to the blank end (s), increment from the right
    # (i), rewind to the left marker (r); accept when the carry reaches
    # the "#" end marker (overflow).
    transitions = {
        ("s", "#"): ("s", "#", RIGHT),
        ("s", "0"): ("s", "0", RIGHT),
        ("s", "1"): ("s", "1", RIGHT),
        ("s", "_"): ("i", "_", LEFT),
        ("i", "0"): ("r", "1", LEFT),
        ("i", "1"): ("i", "0", LEFT),
        ("i", "#"): ("acc", "#", STAY),  # carry fell off: overflow
        ("r", "0"): ("r", "0", LEFT),
        ("r", "1"): ("r", "1", LEFT),
        ("r", "#"): ("s", "#", RIGHT),
    }
    return TuringMachine(
        states=("s", "i", "r", "acc", "rej"),
        input_alphabet=("#", "0", "1"),
        tape_alphabet=("#", "0", "1", "_"),
        blank="_",
        start="s",
        accept="acc",
        reject="rej",
        transitions=transitions,
    )


def counter_run(bits: int, max_steps: int = 1_000_000):
    """Word + trace of the counter machine on ``bits`` zero bits."""
    machine = counter_machine(bits)
    word = ("#",) + tuple("0" for _ in range(bits))
    trace = machine.run(word, tape_length=bits + 2, max_steps=max_steps)
    return machine, word, trace
