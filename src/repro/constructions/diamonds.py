"""The diamond construction of Theorem 7 (Figures 3 and 4).

An MDL query ``Q`` walking a chain of A/B/C/D-"diamonds" from an
``M``-marked source to a ``U``-marked sink, and CQ views ``S, R, T``
over which ``Q`` is Datalog-rewritable (inverse rules) but **not**
MDL-rewritable.  The separating instances:

* ``I_k`` — a chain of ``k+1`` diamonds (``Q`` holds);
* ``J_k = V(I_k)`` — its view image (Figure 3(b));
* ``J'_k`` — a (1,k)-unravelling of ``J_k`` (truncated here);
* ``I'_k`` — the inverse-rules chase of ``J'_k`` (``Q`` fails: any
  S-to-T path needs ``k+1`` R-hops, but in the unravelling the
  long row of R-rectangles of Figure 4 cannot be realized).
"""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.terms import variables
from repro.views.view import View, ViewSet
from repro.views.inverse_rules import chase_with_inverse_rules
from repro.games.unravelling import Unravelling, unravel


def diamond_query() -> DatalogQuery:
    """The MDL query of Thm 7."""
    x, y, z, v = variables("x y z v")
    diamond = (
        Atom("A", (x, y)),
        Atom("B", (y, v)),
        Atom("C", (x, z)),
        Atom("D", (z, v)),
    )
    rules = (
        Rule(Atom("W", (x,)), diamond + (Atom("U", (v,)),)),
        Rule(Atom("W", (x,)), diamond + (Atom("W", (v,)),)),
        Rule(Atom("Goal", ()), (Atom("W", (x,)), Atom("M", (x,)))),
    )
    return DatalogQuery(DatalogProgram(rules), "Goal", "Q_diamond")


def diamond_views() -> ViewSet:
    """The CQ views ``S, R, T`` of Thm 7."""
    x, y, z, v = variables("x y z v")
    y2, z2 = variables("y2 z2")
    return ViewSet(
        [
            View(
                "S",
                ConjunctiveQuery(
                    (x, y, z),
                    (
                        Atom("M", (x,)),
                        Atom("A", (x, y)),
                        Atom("C", (x, z)),
                    ),
                    "S",
                ),
            ),
            View(
                "R",
                ConjunctiveQuery(
                    (y, z, y2, z2),
                    (
                        Atom("B", (y, v)),
                        Atom("D", (z, v)),
                        Atom("A", (v, y2)),
                        Atom("C", (v, z2)),
                    ),
                    "R",
                ),
            ),
            View(
                "T",
                ConjunctiveQuery(
                    (y, z, v),
                    (
                        Atom("U", (v,)),
                        Atom("B", (y, v)),
                        Atom("D", (z, v)),
                    ),
                    "T",
                ),
            ),
        ]
    )


def diamond_chain(diamonds: int) -> Instance:
    """``I_k``-style chain with the given number of diamonds.

    Elements: hubs ``p0 .. p_n`` with ``M(p0)`` and ``U(p_n)``; diamond
    ``i`` links ``p_i`` to ``p_{i+1}`` through ``a_i`` (A/B) and ``c_i``
    (C/D).
    """
    if diamonds < 1:
        raise ValueError("need at least one diamond")
    out = Instance()
    out.add_tuple("M", (("p", 0),))
    for i in range(diamonds):
        out.add_tuple("A", (("p", i), ("a", i)))
        out.add_tuple("B", (("a", i), ("p", i + 1)))
        out.add_tuple("C", (("p", i), ("c", i)))
        out.add_tuple("D", (("c", i), ("p", i + 1)))
    out.add_tuple("U", (("p", diamonds),))
    return out


def long_row_cq(length: int) -> ConjunctiveQuery:
    """The Figure 4 pattern: a row of ``length`` R-rectangles."""
    atoms = []
    head: list = []
    ys = [variables(f"y{i}")[0] for i in range(length + 1)]
    zs = [variables(f"z{i}")[0] for i in range(length + 1)]
    for i in range(length):
        atoms.append(Atom("R", (ys[i], zs[i], ys[i + 1], zs[i + 1])))
    return ConjunctiveQuery(tuple(head), tuple(atoms), f"row{length}")


def unravelled_counterexample(
    k: int, depth: int, max_nodes: int = 200_000
) -> tuple[Instance, Instance, Unravelling]:
    """``(J_k, I'_k, unravelling)`` for the Thm 7 argument.

    ``J_k`` is the view image of the ``k+1``-diamond chain; the second
    component is the inverse-rules chase of the depth-``depth``
    truncation of its (1,k)-unravelling.
    """
    chain = diamond_chain(k + 1)
    views = diamond_views()
    image = views.image(chain)
    unravelling = unravel(
        image,
        max(k, 4),  # bags must fit the arity-4 R-facts
        depth,
        frontier_one=True,
        max_nodes=max_nodes,
        scenes="fact-supported",
    )
    chased = chase_with_inverse_rules(views, unravelling.instance)
    return image, chased, unravelling
