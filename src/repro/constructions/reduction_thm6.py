"""The §6 reduction: tiling → monotonic determinacy for MDL queries and
UCQ views (Thm 6, Prop. 10, Figures 1 and 2).

Given a tiling problem ``TP`` we build the MDL query ``Q_TP`` (rules
(1)–(11)) and the UCQ views ``V_TP`` (grid-generating view ``S``, atomic
views, special views) such that ``Q_TP`` is *not* monotonically
determined by ``V_TP`` iff ``TP`` has a solution.

Conventions (the paper's figures are internally inconsistent about the
orientation of ``C``/``D``; we fix one orientation and use it
everywhere):

* the x-axis is an ``XSucc``-chain marked ``C`` and terminated ``XEnd``;
* the y-axis is a ``YSucc``-chain marked ``D`` and terminated ``YEnd``;
* grid points project onto the axes via ``XProj(x, z)``/``YProj(y, z)``;
* the grid-generating view produces ``S(x-point, y-point)``.

Three corrections to the paper's rule listing (flagged in
EXPERIMENTS.md): rule (10) reads ``YSucc(y, z)`` where the matching view
``V_I`` and the Thm 8 case analysis require ``YProj(y, z)``; the CQ
``VA`` reads ``XSucc(y1, y2)`` where Figure 1(b) shows ``YSucc``; and the
base rules (3)/(5) are strengthened to ``A(x) ← XSucc(x,x'), XEnd(x'),
C(x')`` (symmetrically for ``B``) so that every ``Qstart`` expansion has
both axes non-empty — with the paper's bare ``A(x) ← XEnd(x)`` base, the
degenerate expansion "marked x-axis + zero-length y-axis" has an *empty*
``S`` view, its ``C`` marks become invisible, and the resulting canonical
test fails even for unsolvable tiling problems, breaking Prop. 10's "⇒"
direction.  Our checker found this counterexample automatically; the
strengthened base rules restore the intended equivalence.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.terms import variables
from repro.core.ucq import UCQ
from repro.views.view import View, ViewSet
from repro.constructions.tiling import TilingProblem

GOAL = "Goal"


def tile_predicates(tp: TilingProblem) -> dict:
    """Stable names ``T0, T1, ...`` for the tiles."""
    return {tile: f"T{i}" for i, tile in enumerate(tp.tiles)}


def ha_cq() -> ConjunctiveQuery:
    """``HA(z1, z2, x1, x2, y)``: z2 is the right neighbour of z1."""
    z1, z2, x1, x2, y = variables("z1 z2 x1 x2 y")
    return ConjunctiveQuery(
        (z1, z2, x1, x2, y),
        (
            Atom("YProj", (y, z1)),
            Atom("YProj", (y, z2)),
            Atom("XProj", (x1, z1)),
            Atom("XProj", (x2, z2)),
            Atom("XSucc", (x1, x2)),
        ),
        "HA",
    )


def va_cq() -> ConjunctiveQuery:
    """``VA(z1, z2, x, y1, y2)``: z2 is the upper neighbour of z1."""
    z1, z2, x, y1, y2 = variables("z1 z2 x y1 y2")
    return ConjunctiveQuery(
        (z1, z2, x, y1, y2),
        (
            Atom("YProj", (y1, z1)),
            Atom("YProj", (y2, z2)),
            Atom("XProj", (x, z1)),
            Atom("XProj", (x, z2)),
            Atom("YSucc", (y1, y2)),
        ),
        "VA",
    )


def thm6_query(tp: TilingProblem) -> DatalogQuery:
    """``Q_TP``: the MDL query with rules (1)–(11)."""
    preds = tile_predicates(tp)
    x, x2, y, y2, u, z, z1, z2, o = variables("x x2 y y2 u z z1 z2 o")
    x1v, x2v, y1v = variables("xa xb ya")

    rules = [
        # (1)-(5): Qstart — base rules strengthened, see module docstring
        Rule(Atom("Qstart", ()), (Atom("A", (x,)), Atom("B", (x,)))),
        Rule(
            Atom("A", (x,)),
            (Atom("XSucc", (x, x2)), Atom("A", (x2,)), Atom("C", (x2,))),
        ),
        Rule(
            Atom("A", (x,)),
            (Atom("XSucc", (x, x2)), Atom("XEnd", (x2,)), Atom("C", (x2,))),
        ),
        Rule(
            Atom("B", (y,)),
            (Atom("YSucc", (y, y2)), Atom("B", (y2,)), Atom("D", (y2,))),
        ),
        Rule(
            Atom("B", (y,)),
            (Atom("YSucc", (y, y2)), Atom("YEnd", (y2,)), Atom("D", (y2,))),
        ),
        # (6)-(7): Qhelper
        Rule(
            Atom("Qhelper", ()),
            (Atom("C", (u,)), Atom("YProj", (y, z)), Atom("XProj", (x, z))),
        ),
        Rule(
            Atom("Qhelper", ()),
            (Atom("D", (u,)), Atom("YProj", (y, z)), Atom("XProj", (x, z))),
        ),
    ]

    ha = ha_cq()
    va = va_cq()
    # (8): horizontal incompatibilities
    for left in tp.tiles:
        for right in tp.tiles:
            if (left, right) in tp.horizontal:
                continue
            sub = dict(
                zip(ha.head_vars, (z1, z2, x1v, x2v, y))
            )
            rules.append(
                Rule(
                    Atom("Qverify", ()),
                    tuple(a.substitute(sub) for a in ha.atoms)
                    + (
                        Atom(preds[left], (z1,)),
                        Atom(preds[right], (z2,)),
                    ),
                )
            )
    # (9): vertical incompatibilities
    for below in tp.tiles:
        for above in tp.tiles:
            if (below, above) in tp.vertical:
                continue
            sub = dict(zip(va.head_vars, (z1, z2, x, y1v, y2)))
            rules.append(
                Rule(
                    Atom("Qverify", ()),
                    tuple(a.substitute(sub) for a in va.atoms)
                    + (
                        Atom(preds[below], (z1,)),
                        Atom(preds[above], (z2,)),
                    ),
                )
            )
    # (10): wrong initial tile at (1,1)
    for tile in tp.tiles:
        if tile in tp.initial:
            continue
        rules.append(
            Rule(
                Atom("Qverify", ()),
                (
                    Atom("YSucc", (o, y)),
                    Atom("YProj", (y, z)),
                    Atom("XSucc", (o, x)),
                    Atom("XProj", (x, z)),
                    Atom(preds[tile], (z,)),
                ),
            )
        )
    # (11): wrong final tile at (n,m)
    for tile in tp.tiles:
        if tile in tp.final:
            continue
        rules.append(
            Rule(
                Atom("Qverify", ()),
                (
                    Atom("YEnd", (y,)),
                    Atom("YProj", (y, z)),
                    Atom(preds[tile], (z,)),
                    Atom("XProj", (x, z)),
                    Atom("XEnd", (x,)),
                ),
            )
        )
    # Goal: the disjunction Qstart ∨ Qhelper ∨ Qverify
    for part in ("Qstart", "Qhelper", "Qverify"):
        rules.append(Rule(Atom(GOAL, ()), (Atom(part, ()),)))
    return DatalogQuery(DatalogProgram(tuple(rules)), GOAL, "Q_TP")


def thm6_views(tp: TilingProblem) -> ViewSet:
    """``V_TP``: grid-generating, atomic, and special views."""
    preds = tile_predicates(tp)
    x, y, z, u, o, z1, z2 = variables("x y z u o z1 z2")
    x1, x2, y1, y2 = variables("x1 x2 y1 y2")

    # grid-generating view S
    s_disjuncts = [
        ConjunctiveQuery((x, y), (Atom("C", (x,)), Atom("D", (y,))), "S0")
    ]
    for tile in tp.tiles:
        s_disjuncts.append(
            ConjunctiveQuery(
                (x, y),
                (
                    Atom("XProj", (x, z)),
                    Atom(preds[tile], (z,)),
                    Atom("YProj", (y, z)),
                ),
                f"S·{preds[tile]}",
            )
        )
    views = [View("S", UCQ(s_disjuncts, "S"))]

    # atomic views
    for pred, arity in (
        ("YSucc", 2), ("XSucc", 2), ("YEnd", 1), ("XEnd", 1),
    ):
        args = (x, y)[:arity]
        views.append(
            View(
                f"V{pred}",
                ConjunctiveQuery(args, (Atom(pred, args),), f"V{pred}"),
            )
        )
    for tile in tp.tiles:
        views.append(
            View(
                f"V{preds[tile]}",
                ConjunctiveQuery(
                    (x,), (Atom(preds[tile], (x,)),), f"V{preds[tile]}"
                ),
            )
        )

    # special views
    views.append(
        View(
            "VhelperC",
            ConjunctiveQuery(
                (u, x, y, z),
                (
                    Atom("C", (u,)),
                    Atom("XProj", (x, z)),
                    Atom("YProj", (y, z)),
                ),
                "VhelperC",
            ),
        )
    )
    views.append(
        View(
            "VhelperD",
            ConjunctiveQuery(
                (u, x, y, z),
                (
                    Atom("D", (u,)),
                    Atom("XProj", (x, z)),
                    Atom("YProj", (y, z)),
                ),
                "VhelperD",
            ),
        )
    )
    ha = ha_cq()
    va = va_cq()
    views.append(View("VHA", ConjunctiveQuery(ha.head_vars, ha.atoms, "VHA")))
    views.append(View("VVA", ConjunctiveQuery(va.head_vars, va.atoms, "VVA")))
    views.append(
        View(
            "VI",
            ConjunctiveQuery(
                (o, x, y, z),
                (
                    Atom("XSucc", (o, x)),
                    Atom("XProj", (x, z)),
                    Atom("YSucc", (o, y)),
                    Atom("YProj", (y, z)),
                ),
                "VI",
            ),
        )
    )
    views.append(
        View(
            "VF",
            ConjunctiveQuery(
                (x, y, z),
                (
                    Atom("XProj", (x, z)),
                    Atom("XEnd", (x,)),
                    Atom("YEnd", (y,)),
                    Atom("YProj", (y, z)),
                ),
                "VF",
            ),
        )
    )
    return ViewSet(views)


# ---------------------------------------------------------------------------
# concrete instances (Figures 1 and 2)
# ---------------------------------------------------------------------------


def axes_instance(
    length: int, width: Optional[int] = None, marked: bool = True
) -> Instance:
    """``I_ℓ`` (Figure 2(a)): the two axes with a common origin.

    ``length`` is the x-axis length, ``width`` the y-axis length
    (defaults to ``length``).  With ``marked=False`` the ``C``/``D``
    marks are omitted — that is the shape axes take inside grid-like
    *tests* (Figure 1(a)), where the marks are hidden by the views.
    """
    width = width if width is not None else length
    out = Instance()
    origin = "o"
    out.add_tuple("XSucc", (origin, ("x", 1)))
    out.add_tuple("YSucc", (origin, ("y", 1)))
    for i in range(1, length + 1):
        if marked:
            out.add_tuple("C", (("x", i),))
        if i < length:
            out.add_tuple("XSucc", (("x", i), ("x", i + 1)))
    for j in range(1, width + 1):
        if marked:
            out.add_tuple("D", (("y", j),))
        if j < width:
            out.add_tuple("YSucc", (("y", j), ("y", j + 1)))
    out.add_tuple("XEnd", (("x", length),))
    out.add_tuple("YEnd", (("y", width),))
    return out


def grid_test_instance(
    tp: TilingProblem,
    n: int,
    m: int,
    tiling: Optional[Mapping[tuple, object]] = None,
) -> Instance:
    """A grid-like test (Figure 1(a)): axes + tiled grid points.

    ``tiling`` maps ``(i, j)`` (1-based) to tiles; defaults to the first
    tile everywhere.  The axes are unmarked: in a test, the ``C``/``D``
    marks of the source instance are hidden by the views.
    """
    preds = tile_predicates(tp)
    out = axes_instance(n, m, marked=False)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            point = ("z", i, j)
            out.add_tuple("XProj", (("x", i), point))
            out.add_tuple("YProj", (("y", j), point))
            tile = (
                tiling[(i, j)] if tiling is not None else tp.tiles[0]
            )
            out.add_tuple(preds[tile], (point,))
    return out
