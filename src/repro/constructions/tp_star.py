"""The tiling problem ``TP*`` of Lemma 6 (appendix, after [4]).

``TP*`` has the property that **no** rectangular grid can be tiled, yet
every k-unravelling of a large enough grid *can* — the engine behind
Theorem 8's non-rewritability result.

Construction: tiles are pairs ``(u, b̄)`` of an "abstract grid point"
``u ∈ G_{3,3}`` and a 0/1 assignment ``b̄`` to its incident edges whose
sum is *odd* at the corner ``(1,1)`` and *even* everywhere else; the
compatibility relations force adjacent (or same-class) tiles to agree on
the 0/1 value of their shared (abstract) edge.  A tiling of ``G_{n,m}``
would give a 0/1 edge assignment whose degree sums have odd total — but
each edge is counted twice, a contradiction (Claim 2).  Partial
assignments built from walks starting at the corner satisfy all local
parity checks, giving the Duplicator's winning strategy (Claim 3).
"""

from __future__ import annotations

from itertools import product as iproduct
from typing import Optional

from repro.constructions.tiling import TilingProblem

_DIRECTIONS = ("up", "right", "down", "left")
_OFFSETS = {
    "up": (0, 1),
    "right": (1, 0),
    "down": (0, -1),
    "left": (-1, 0),
}


def _neighbour(vertex: tuple, direction: str, n: int, m: int) -> Optional[tuple]:
    dx, dy = _OFFSETS[direction]
    i, j = vertex[0] + dx, vertex[1] + dy
    if 1 <= i <= n and 1 <= j <= m:
        return (i, j)
    return None


def incident_directions(vertex: tuple, n: int, m: int) -> tuple[str, ...]:
    """The canonical enumeration of incident edges, by direction."""
    return tuple(
        d for d in _DIRECTIONS if _neighbour(vertex, d, n, m) is not None
    )


def edge_of(vertex: tuple, direction: str, n: int, m: int) -> frozenset:
    other = _neighbour(vertex, direction, n, m)
    if other is None:
        raise ValueError(f"no {direction} edge at {vertex} in G_{n},{m}")
    return frozenset((vertex, other))


def abstract_tiles() -> list[tuple]:
    """All tiles ``(u, b1, ..., b_du)`` with the parity condition."""
    tiles = []
    for i in range(1, 4):
        for j in range(1, 4):
            u = (i, j)
            directions = incident_directions(u, 3, 3)
            want = 1 if u == (1, 1) else 0
            for bits in iproduct((0, 1), repeat=len(directions)):
                if sum(bits) % 2 == want:
                    tiles.append((u,) + bits)
    return tiles


def _bit_at(tile: tuple, direction: str) -> Optional[int]:
    """The tile's bit for the given direction (None if absent)."""
    u = tile[0]
    directions = incident_directions(u, 3, 3)
    if direction not in directions:
        return None
    return tile[1 + directions.index(direction)]


def _compatible_pairs(axis: str) -> set[tuple]:
    """HC* (axis='h') or VC* (axis='v') per the Lemma 6 construction."""
    pairs: set[tuple] = set()
    tiles = abstract_tiles()
    ahead = "right" if axis == "h" else "up"
    behind = "left" if axis == "h" else "down"

    by_abstract: dict[tuple, list[tuple]] = {}
    for tile in tiles:
        by_abstract.setdefault(tile[0], []).append(tile)

    # distinct abstract points joined by a real edge of G3,3
    for u, us in by_abstract.items():
        v = _neighbour(u, ahead, 3, 3)
        if v is None:
            continue
        vs = by_abstract[v]
        for t1 in us:
            b1 = _bit_at(t1, ahead)
            for t2 in vs:
                if b1 == _bit_at(t2, behind):
                    pairs.add((t1, t2))

    # same abstract point (the "interior repeats")
    for u, us in by_abstract.items():
        if _neighbour(u, ahead, 3, 3) is None or _neighbour(
            u, behind, 3, 3
        ) is None:
            continue  # only points with both edges repeat along the axis
        for t1 in us:
            b1 = _bit_at(t1, ahead)
            for t2 in us:
                if b1 == _bit_at(t2, behind):
                    pairs.add((t1, t2))
    return pairs


def tp_star() -> TilingProblem:
    """The tiling problem ``TP*`` of Lemma 6."""
    tiles = abstract_tiles()
    return TilingProblem(
        tiles=tiles,
        horizontal=_compatible_pairs("h"),
        vertical=_compatible_pairs("v"),
        initial=[t for t in tiles if t[0] == (1, 1)],
        final=[t for t in tiles if t[0] == (3, 3)],
    )


def psi(n: int, m: int) -> dict[tuple, tuple]:
    """``Ψ``: abstraction of ``G_{n,m}`` points to ``G_{3,3}`` points."""

    def clamp(value: int, top: int) -> int:
        if value == 1:
            return 1
        if value == top:
            return 3
        return 2

    return {
        (i, j): (clamp(i, n), clamp(j, m))
        for i in range(1, n + 1)
        for j in range(1, m + 1)
    }


def walk_tile_assignment(
    walk: list[tuple], n: int, m: int
) -> dict[tuple, tuple]:
    """``h_P`` from Claim 3: the tile assignment induced by a walk.

    ``walk`` is a sequence of adjacent ``G_{n,m}`` vertices starting at
    ``(1,1)``; the assignment is defined on every vertex except the
    walk's endpoint, mapping ``a`` to ``(Ψ(a), x^P_{e^a_1}, ...)`` where
    ``x^P_e`` is the parity of the number of times the walk uses ``e``.
    """
    if not walk or walk[0] != (1, 1):
        raise ValueError("walks must start at (1, 1)")
    use_count: dict[frozenset, int] = {}
    for a, b in zip(walk, walk[1:]):
        edge = frozenset((a, b))
        use_count[edge] = use_count.get(edge, 0) + 1
    abstraction = psi(n, m)
    assignment: dict[tuple, tuple] = {}
    endpoint = walk[-1]
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            vertex = (i, j)
            if vertex == endpoint:
                continue
            bits = tuple(
                use_count.get(edge_of(vertex, d, n, m), 0) % 2
                for d in incident_directions(vertex, n, m)
            )
            assignment[vertex] = (abstraction[vertex],) + bits
    return assignment
