"""Tiling problems (§6).

A :class:`TilingProblem` ``(Tiles, HC, VC, IT, FT)`` asks for an ``n×m``
assignment respecting horizontal/vertical compatibility, with an initial
tile bottom-left and a final tile top-right.  The problem "does TP have
a solution" is undecidable in general; :func:`solve` is the bounded
search used by the T2-MDL-UCQ benchmark to drive the Thm 6 reduction on
*decidable* source instances.

Tiling is homomorphism: an instance over ``δ`` can be tiled by ``TP``
iff it maps into the relational structure ``I_TP`` (:func:`as_instance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from repro.core.homomorphism import instance_homomorphism
from repro.core.instance import Instance
from repro.constructions.grids import grid_instance

Tile = Hashable


@dataclass(frozen=True)
class TilingProblem:
    """``TP = (Tiles, HC, VC, IT, FT)``."""

    tiles: tuple
    horizontal: frozenset  # pairs (left, right)
    vertical: frozenset  # pairs (below, above)
    initial: frozenset
    final: frozenset

    def __init__(
        self,
        tiles: Iterable[Tile],
        horizontal: Iterable[tuple],
        vertical: Iterable[tuple],
        initial: Iterable[Tile],
        final: Iterable[Tile],
    ) -> None:
        object.__setattr__(self, "tiles", tuple(tiles))
        object.__setattr__(self, "horizontal", frozenset(horizontal))
        object.__setattr__(self, "vertical", frozenset(vertical))
        object.__setattr__(self, "initial", frozenset(initial))
        object.__setattr__(self, "final", frozenset(final))

    def as_instance(self) -> Instance:
        """``I_TP``: the tiling problem as a structure over ``δ``."""
        out = Instance()
        for left, right in self.horizontal:
            out.add_tuple("H", (left, right))
        for below, above in self.vertical:
            out.add_tuple("V", (below, above))
        for tile in self.initial:
            out.add_tuple("I", (tile,))
        for tile in self.final:
            out.add_tuple("F", (tile,))
        return out

    def tile_instance(self, instance: Instance) -> Optional[dict]:
        """A tiling of a δ-instance, as a homomorphism into ``I_TP``."""
        return instance_homomorphism(instance, self.as_instance())

    def can_tile(self, instance: Instance) -> bool:
        return self.tile_instance(instance) is not None

    def tile_grid(self, n: int, m: int) -> Optional[dict]:
        """A solution on the ``n × m`` grid, or None."""
        return self.tile_instance(grid_instance(n, m))

    def solve(
        self, max_n: int, max_m: Optional[int] = None
    ) -> Optional[tuple[int, int, dict]]:
        """Bounded search for a solution: the smallest ``(n, m)`` grid.

        Returns ``(n, m, tiling)`` or None when no grid up to the bounds
        can be tiled.  (The unbounded problem is undecidable; callers
        pick the bound.)
        """
        max_m = max_m if max_m is not None else max_n
        for total in range(2, max_n + max_m + 1):
            for n in range(1, max_n + 1):
                m = total - n
                if not 1 <= m <= max_m:
                    continue
                tiling = self.tile_grid(n, m)
                if tiling is not None:
                    return n, m, tiling
        return None


def solvable_example() -> TilingProblem:
    """A small solvable tiling problem (2×2 chessboard-ish)."""
    return TilingProblem(
        tiles=("a", "b"),
        horizontal={("a", "b"), ("b", "a")},
        vertical={("a", "b"), ("b", "a")},
        initial={"a"},
        final={"a", "b"},
    )


def unsolvable_example() -> TilingProblem:
    """A small unsolvable problem: the final tile is unreachable."""
    return TilingProblem(
        tiles=("a", "b", "c"),
        horizontal={("a", "a"), ("b", "b")},
        vertical={("a", "a"), ("b", "b")},
        initial={"a"},
        final={"c"},
    )
