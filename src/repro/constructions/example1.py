"""Example 1 of the paper, end to end.

A Boolean Datalog query over a ternary ``T``, binary ``B`` and unary
``U1``/``U2``, with two view families:

* ``V0–V2`` (CQ views): the paper's Datalog rewriting replaces the
  recursive rule body by ``V0`` and the unary atoms by ``V1``/``V2``;
* ``V3``/``V4`` (a CQ view + a recursive FGDL view): the paper's
  rewriting is the single CQ ``∃y z  V3(y, z) ∧ V4(y, z)``.

Both claimed rewritings are constructed here and verified by the EX1
benchmark against direct evaluation on generated instances.
"""

from __future__ import annotations

from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.core.parser import parse_cq, parse_program
from repro.views.view import View, ViewSet


def example1_query() -> DatalogQuery:
    """The query ``Q`` of Example 1."""
    program = parse_program(
        """
        GoalQ() <- U1(x), W1(x).
        W1(x) <- T(x,y,z), B(z,w), B(y,w), W1(w).
        W1(x) <- U2(x).
        """
    )
    return DatalogQuery(program, "GoalQ", "Q_ex1")


def views_v0_v2() -> ViewSet:
    """The CQ views ``V0, V1, V2``."""
    return ViewSet(
        [
            View("V0", parse_cq("V(x,w) <- T(x,y,z), B(z,w), B(y,w)", "V0")),
            View("V1", parse_cq("V(x) <- U1(x)", "V1")),
            View("V2", parse_cq("V(x) <- U2(x)", "V2")),
        ]
    )


def views_v3_v4() -> ViewSet:
    """The CQ view ``V3`` and the recursive FGDL view ``V4``."""
    v3 = View("V3", parse_cq("V(y,z) <- U1(x), T(x,y,z)", "V3"))
    v4_program = parse_program(
        """
        GoalV4(y,z) <- T(x,y,z), B(z,w), B(y,w), T(w,q,r), GoalV4(q,r).
        GoalV4(y,z) <- B(y,w), B(z,w), U2(w).
        """
    )
    v4 = View("V4", DatalogQuery(v4_program, "GoalV4", "V4"))
    return ViewSet([v3, v4])


def paper_rewriting_v0_v2() -> DatalogQuery:
    """The paper's Datalog rewriting over ``V0–V2``."""
    program = parse_program(
        """
        GoalR() <- V1(x), W1(x).
        W1(x) <- V0(x,w), W1(w).
        W1(x) <- V2(x).
        """
    )
    return DatalogQuery(program, "GoalR", "Q_ex1_rw")


def paper_rewriting_v3_v4() -> ConjunctiveQuery:
    """The paper's CQ rewriting over ``V3``/``V4``."""
    return parse_cq("R() <- V3(y,z), V4(y,z)", "Q_ex1_cq_rw")


def views_v3_v4_repaired() -> ViewSet:
    """Erratum E1 repair: expose the zero-iteration case via ``V5``.

    With ``V5(x) ← U1(x), U2(x)`` added, ``Q`` *is* monotonically
    determined over the views and the UCQ rewriting of
    :func:`repaired_rewriting_v3_v5` is exact.
    """
    base = views_v3_v4()
    v5 = View("V5", parse_cq("V(x) <- U1(x), U2(x)", "V5"))
    return ViewSet(list(base) + [v5])


def repaired_rewriting_v3_v5():
    """The UCQ rewriting over the repaired view set."""
    from repro.core.parser import parse_ucq

    return parse_ucq(
        """
        R() <- V3(y,z), V4(y,z).
        R() <- V5(x).
        """,
        "Q_ex1_ucq_rw",
    )


def chain_instance(links: int, closed: bool = True) -> Instance:
    """A ``T``/``B`` chain exercising the recursion.

    ``links`` diamonds ``T(p_i, a_i, b_i), B(b_i, p_{i+1}),
    B(a_i, p_{i+1})`` with ``U1`` at the start and — when ``closed`` —
    ``U2`` at the end (so ``Q`` holds exactly when ``closed``).
    """
    out = Instance()
    out.add_tuple("U1", (("p", 0),))
    for i in range(links):
        out.add_tuple("T", (("p", i), ("a", i), ("b", i)))
        out.add_tuple("B", (("b", i), ("p", i + 1)))
        out.add_tuple("B", (("a", i), ("p", i + 1)))
    if closed:
        out.add_tuple("U2", (("p", links),))
    return out
