"""Grid structures (§6, §7).

* ``Igrid(n, m)`` — the database instance over ``δ = {H, V, I, F}``
  whose domain is the ``n × m`` grid, with horizontal/vertical successor
  relations and initial/final markers at the corners (Thm 8).
* :func:`grid_graph` — the grid graph ``G_{n,m}`` (Gaifman graph of the
  grid instance), used by the TP* construction of Lemma 6.
"""

from __future__ import annotations

import networkx as nx

from repro.core.instance import Instance

DELTA_SCHEMA = {"H": 2, "V": 2, "I": 1, "F": 1}


def grid_instance(n: int, m: int) -> Instance:
    """``Igrid(n, m)``: domain ``{(i, j)}``, 1-based as in the paper."""
    if n < 1 or m < 1:
        raise ValueError("grid dimensions must be positive")
    out = Instance()
    out.add_tuple("I", ((1, 1),))
    out.add_tuple("F", ((n, m),))
    for j in range(1, m + 1):
        for i in range(1, n):
            out.add_tuple("H", ((i, j), (i + 1, j)))
    for i in range(1, n + 1):
        for j in range(1, m):
            out.add_tuple("V", ((i, j), (i, j + 1)))
    return out


def grid_graph(n: int, m: int) -> nx.Graph:
    """The grid graph ``G_{n,m}`` (undirected)."""
    graph = nx.Graph()
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            graph.add_node((i, j))
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if i < n:
                graph.add_edge((i, j), (i + 1, j))
            if j < m:
                graph.add_edge((i, j), (i, j + 1))
    return graph


def cross(n: int, m: int, p: int, q: int) -> set:
    """The ``(p, q)``-cross ``C_{p,q}`` of ``G_{n,m}`` (Claim 3)."""
    return {(p, j) for j in range(1, m + 1)} | {
        (i, q) for i in range(1, n + 1)
    }
