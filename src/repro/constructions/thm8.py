"""Theorem 8: an MDL query monotonically determined over UCQ views with
no Datalog rewriting.

The query/views are ``Q_TP*`` and ``V_TP*`` — the §6 reduction applied
to the tiling problem ``TP*`` of Lemma 6.  Because no rectangular grid
can be tiled with ``TP*``, every canonical test succeeds, so ``Q_TP*``
*is* monotonically determined.  Because large grids are k-approximately
tilable, the instance pairs ``(I_ℓ, I'_ℓ)`` below separate ``Q_TP*``
from every Datalog query over the views (Fact 2).

This module builds the chain of objects from the proof:

``I_ℓ`` (the marked axes) → ``E_ℓ = V(I_ℓ)`` → ``U_ℓ`` (an unravelling
truncation) → ``W_ℓ`` (the S-facts viewed as a δ-instance) → a tiling
``χ`` of ``W_ℓ`` → ``I'_ℓ`` (inverse chase materializing ``χ``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.views.view import ViewSet
from repro.games.unravelling import Unravelling, unravel
from repro.constructions.grids import grid_instance
from repro.constructions.reduction_thm6 import (
    axes_instance,
    thm6_query,
    thm6_views,
    tile_predicates,
)
from repro.constructions.tiling import TilingProblem
from repro.constructions.tp_star import tp_star


@dataclass
class Thm8Witness:
    """All intermediate objects of the Thm 8 construction."""

    tp: TilingProblem
    query: DatalogQuery
    views: ViewSet
    ell: int
    source: Instance  # I_ℓ
    image: Instance  # E_ℓ = V(I_ℓ)
    unravelling: Unravelling  # U_ℓ (truncated)
    w_instance: Instance  # W_ℓ over δ
    tiling: Optional[dict]  # χ : W_ℓ → I_TP*
    counterexample: Optional[Instance]  # I'_ℓ


def w_instance_from_unravelling(unravelling: Unravelling) -> Instance:
    """``W_ℓ``: the S-facts of ``U_ℓ`` as a δ-instance.

    Domain: pairs ``(u, v)`` with ``S(u, v)`` in ``U_ℓ`` (``u`` an
    x-axis copy, ``v`` a y-axis copy, per our §6 orientation).
    ``H``/``V`` follow ``VXSucc``/``VYSucc``; ``I``/``F`` mark the pairs
    projecting to the grid corners.
    """
    u_inst = unravelling.instance
    phi = unravelling.projection
    points = sorted(u_inst.tuples("S"), key=repr)
    out = Instance()
    xs = {phi[p[0]] for p in points}
    ys = {phi[p[1]] for p in points}
    x_first, x_last = ("x", 1), ("x", max(i for (_, i) in xs))
    y_first, y_last = ("y", 1), ("y", max(j for (_, j) in ys))
    for point in points:
        u, v = point
        if phi[u] == x_first and phi[v] == y_first:
            out.add_tuple("I", (point,))
        if phi[u] == x_last and phi[v] == y_last:
            out.add_tuple("F", (point,))
        for u2, v2 in points:
            if v2 == v and u_inst.has_tuple("VXSucc", (u, u2)):
                out.add_tuple("H", (point, (u2, v2)))
            if u2 == u and u_inst.has_tuple("VYSucc", (v, v2)):
                out.add_tuple("V", (point, (u2, v2)))
    return out


def counterexample_instance(
    unravelling: Unravelling,
    tiling: dict,
    tp: TilingProblem,
) -> Instance:
    """``I'_ℓ``: materialize the unravelling over the base schema.

    ``VXSucc/VYSucc/VXEnd/VYEnd`` facts become their base versions;
    every ``S(u, v)`` becomes ``XProj(u, s)``, ``YProj(v, s)`` and
    ``T_i(s)`` for a fresh ``s``, where ``χ((u, v)) = T_i``.
    """
    preds = tile_predicates(tp)
    u_inst = unravelling.instance
    out = Instance()
    renames = {
        "VXSucc": "XSucc", "VYSucc": "YSucc",
        "VXEnd": "XEnd", "VYEnd": "YEnd",
    }
    for view_name, base_name in renames.items():
        for row in u_inst.tuples(view_name):
            out.add_tuple(base_name, row)
    for index, point in enumerate(sorted(u_inst.tuples("S"), key=repr)):
        u, v = point
        fresh = ("s", index)
        out.add_tuple("XProj", (u, fresh))
        out.add_tuple("YProj", (v, fresh))
        # Points absent from the tiling's domain carry no W_ℓ-fact, so
        # no compatibility or corner rule can ever fire on them: any
        # tile is safe there.
        tile = tiling.get(point, tp.tiles[0])
        out.add_tuple(preds[tile], (fresh,))
    return out


def build_witness(
    ell: int,
    depth: int = 2,
    k: Optional[int] = None,
    max_nodes: int = 200_000,
) -> Thm8Witness:
    """Run the whole Thm 8 pipeline for the given ``ℓ``.

    ``k`` defaults to the paper's ``⌊√(ℓ-1)⌋`` (at least 2).  The
    unravelling is a depth-``depth`` fact-supported truncation.
    """
    tp = tp_star()
    query = thm6_query(tp)
    views = thm6_views(tp)
    source = axes_instance(ell)
    image = views.image(source)
    k = k if k is not None else max(2, math.isqrt(max(ell - 1, 1)))
    unravelling = unravel(
        image, k, depth, max_nodes=max_nodes, scenes="fact-supported"
    )
    w_inst = w_instance_from_unravelling(unravelling)
    tiling = tp.tile_instance(w_inst)
    counterexample = (
        counterexample_instance(unravelling, tiling, tp)
        if tiling is not None
        else None
    )
    return Thm8Witness(
        tp, query, views, ell, source, image, unravelling, w_inst,
        tiling, counterexample,
    )


def grid_untilable_up_to(tp: TilingProblem, bound: int) -> bool:
    """Check no ``n×m`` grid with ``n, m ≤ bound`` is tilable."""
    return all(
        not tp.can_tile(grid_instance(n, m))
        for n in range(1, bound + 1)
        for m in range(1, bound + 1)
    )
