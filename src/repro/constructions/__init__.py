"""Every concrete construction from the paper (§6, §7, appendix)."""

from repro.constructions.grids import cross, grid_graph, grid_instance
from repro.constructions.tiling import (
    TilingProblem,
    solvable_example,
    unsolvable_example,
)
from repro.constructions.reduction_thm6 import (
    axes_instance,
    grid_test_instance,
    ha_cq,
    thm6_query,
    thm6_views,
    tile_predicates,
    va_cq,
)
from repro.constructions.tp_star import (
    abstract_tiles,
    psi,
    tp_star,
    walk_tile_assignment,
)
from repro.constructions.diamonds import (
    diamond_chain,
    diamond_query,
    diamond_views,
    long_row_cq,
    unravelled_counterexample,
)
from repro.constructions.thm8 import (
    Thm8Witness,
    build_witness,
    grid_untilable_up_to,
    w_instance_from_unravelling,
)
from repro.constructions.machines import (
    TuringMachine,
    counter_machine,
    counter_run,
    encode_run,
    machine_tables,
    run_string,
)
from repro.constructions.thm9 import (
    TuringSeparator,
    thm9_query,
    thm9_views,
)
from repro.constructions.example1 import (
    chain_instance,
    example1_query,
    paper_rewriting_v0_v2,
    paper_rewriting_v3_v4,
    views_v0_v2,
    views_v3_v4,
)

__all__ = [
    "cross", "grid_graph", "grid_instance", "TilingProblem",
    "solvable_example", "unsolvable_example", "axes_instance",
    "grid_test_instance", "ha_cq", "thm6_query", "thm6_views",
    "tile_predicates", "va_cq", "abstract_tiles", "psi", "tp_star",
    "walk_tile_assignment", "diamond_chain", "diamond_query",
    "diamond_views", "long_row_cq", "unravelled_counterexample",
    "Thm8Witness", "build_witness", "grid_untilable_up_to",
    "w_instance_from_unravelling", "TuringMachine", "counter_machine",
    "counter_run", "encode_run", "machine_tables", "run_string",
    "TuringSeparator", "thm9_query", "thm9_views", "chain_instance",
    "example1_query", "paper_rewriting_v0_v2", "paper_rewriting_v3_v4",
    "views_v0_v2", "views_v3_v4",
]
