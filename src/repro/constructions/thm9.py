"""The Theorem 9 construction: no computable time bound on separators.

The paper pairs a Datalog query that (i) accepts any *badly-shaped*
run-string instance and (ii) accepts honest encodings of *accepting*
runs, with views exposing (a) the input segment, (b) a Boolean
"badly-shaped" detector and (c) a "pre-run" marker.  Determinism of the
machine makes the query monotonically determined over the views, while
any separator effectively decides the machine's acceptance — so its
running time is bottlenecked by the machine's.

Scoped rendering (DESIGN.md §4): no concrete time-hierarchy machine is
available to "beat", so we instantiate the construction with concrete
machines (the exponential-time binary counter of
:mod:`repro.constructions.machines`) and *measure* the phenomenon: the
faithful separator's cost tracks the machine's running time, which grows
exponentially in the input size while the view instance grows only
linearly.  Letters are carried by a binary ``Letter`` relation and the
machine's step function by a materialized ``Step·T`` table — a constant
re-encoding of the paper's per-letter unary predicates that keeps the
Datalog program machine-size-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.terms import variables
from repro.views.view import View, ViewSet
from repro.constructions.machines import (
    MARK_INP_BEGIN,
    MARK_INP_END,
    MARK_RUN_END,
    MARK_SEP,
    TuringMachine,
)


def _config_letters(machine: TuringMachine) -> list:
    """All letters that may appear inside a configuration segment."""
    letters: list = list(machine.tape_alphabet)
    for state in machine.states:
        for symbol in machine.tape_alphabet:
            letters.append(("q", state, symbol))
    return letters


def _expected_letter(machine: TuringMachine, left, mid, right):
    """The letter below ``mid`` in the successor configuration.

    ``left``/``right`` may be segment markers.  A halted head repeats
    its configuration (so honest encodings may simply stop at the
    halting configuration).
    """

    def is_head(letter) -> bool:
        return isinstance(letter, tuple) and letter[0] == "q"

    if is_head(mid):
        state, symbol = mid[1], mid[2]
        key = (state, symbol)
        if key not in machine.transitions:
            return mid
        new_state, new_symbol, move = machine.transitions[key]
        if move == 0:
            return ("q", new_state, new_symbol)
        return new_symbol
    if is_head(left):
        key = (left[1], left[2])
        if key in machine.transitions:
            new_state, _sym, move = machine.transitions[key]
            if move == 1:
                return ("q", new_state, mid)
    if is_head(right):
        key = (right[1], right[2])
        if key in machine.transitions:
            new_state, _sym, move = machine.transitions[key]
            if move == -1:
                return ("q", new_state, mid)
    return mid


def _badly_shaped_rules(machine: TuringMachine, goal: str) -> list[Rule]:
    """Datalog detection of badly-shaped run strings.

    Families: (1) local marker violations, (2) first configuration must
    mirror the input word, (3) consecutive configurations must follow
    the machine's step function (synchronized two-pointer walk +
    ``Step·T``/``Diff·T`` lookups).
    """
    p, q, p2, q2, s, t = variables("p q p2 q2 s t")
    a, b, c, d, e = variables("a b c d e")
    pl, pr = variables("pl pr")
    rules: list[Rule] = []

    # --- family 1: local marker violations ------------------------------
    rules.append(Rule(Atom(goal, ()), (
        Atom(MARK_SEP, (p,)), Atom("Succ·p", (p, q)), Atom(MARK_SEP, (q,)),
    )))
    rules.append(Rule(Atom(goal, ()), (
        Atom(MARK_SEP, (p,)), Atom("Succ·p", (p, q)),
        Atom(MARK_RUN_END, (q,)),
    )))
    rules.append(Rule(Atom(goal, ()), (
        Atom(MARK_INP_END, (p,)), Atom("Succ·p", (p, q)),
        Atom(MARK_RUN_END, (q,)),
    )))

    # --- family 2: first configuration mirrors the input ----------------
    # head letter at the first cell:
    rules.append(Rule(Atom(goal, ()), (
        Atom(MARK_INP_BEGIN, (s,)),
        Atom("Succ", (s, p)),
        Atom("Letter", (p, a)),
        Atom(MARK_INP_END, (t,)),
        Atom("Succ·p", (t, q)),
        Atom("Letter·p", (q, b)),
        Atom("Init·T", (a, c)),
        Atom("Diff·T", (c, b)),
    )))
    # SyncInit(p, q): matching offsets >= 2; verbatim copies afterwards.
    rules.append(Rule(Atom("SyncInit·9", (p2, q2)), (
        Atom(MARK_INP_BEGIN, (s,)),
        Atom("Succ", (s, p)),
        Atom("Succ", (p, p2)),
        Atom(MARK_INP_END, (t,)),
        Atom("Succ·p", (t, q)),
        Atom("Succ·p", (q, q2)),
    )))
    rules.append(Rule(Atom("SyncInit·9", (p2, q2)), (
        Atom("SyncInit·9", (p, q)),
        Atom("Succ", (p, p2)),
        Atom("Succ·p", (q, q2)),
    )))
    # Only compare positions carrying genuine input letters: the first
    # configuration is blank-padded past the (shorter) input segment.
    rules.append(Rule(Atom(goal, ()), (
        Atom("SyncInit·9", (p, q)),
        Atom("Letter", (p, a)),
        Atom("InputLetter·T", (a,)),
        Atom("Letter·p", (q, b)),
        Atom("Diff·T", (a, b)),
    )))

    # --- family 3: consecutive configurations ---------------------------
    # SegNext(s, t): t is a later segment boundary reachable from
    # boundary s without crossing another boundary.
    rules.append(Rule(Atom("NoSep·9", (s, p)), (Atom("Succ·p", (s, p)),)))
    rules.append(Rule(Atom("NoSep·9", (s, t)), (
        Atom("NoSep·9", (s, p)),
        Atom("NotSep·9", (p,)),
        Atom("Succ·p", (p, t)),
    )))
    # NotSep: any position carrying a non-marker letter (config letters
    # never coincide with markers in honest encodings).
    for letter_rel in ("Letter·p",):
        rules.append(Rule(Atom("NotSep·9", (p,)), (
            Atom(letter_rel, (p, a)), Atom("ConfigLetter·T", (a,)),
        )))
    rules.append(Rule(Atom("SegNext·9", (s, t)), (
        Atom("NoSep·9", (s, t)), Atom(MARK_SEP, (t,)),
    )))
    # Sync(p, q): same offset in consecutive segments.
    for start_marker in (MARK_INP_END, MARK_SEP):
        rules.append(Rule(Atom("Sync·9", (p, q)), (
            Atom(start_marker, (s,)),
            Atom("SegNext·9", (s, t)),
            Atom("Succ·p", (s, p)),
            Atom("Succ·p", (t, q)),
        )))
    rules.append(Rule(Atom("Sync·9", (p2, q2)), (
        Atom("Sync·9", (p, q)),
        Atom("Succ·p", (p, p2)),
        Atom("Succ·p", (q, q2)),
    )))
    # window mismatch via the step table:
    rules.append(Rule(Atom(goal, ()), (
        Atom("Sync·9", (p, q)),
        Atom("Succ·p", (pl, p)),
        Atom("Letter·p", (pl, a)),
        Atom("Letter·p", (p, b)),
        Atom("Succ·p", (p, pr)),
        Atom("Letter·p", (pr, c)),
        Atom("Step·T", (a, b, c, d)),
        Atom("Letter·p", (q, e)),
        Atom("Diff·T", (d, e)),
        Atom("ConfigLetter·T", (b,)),
        Atom("ConfigLetter·T", (e,)),
    )))
    return rules


def _accept_rules(machine: TuringMachine) -> list[Rule]:
    """Accepting-run detection: an accept-head letter in the final
    segment (only config letters between it and ``σRunEnd``)."""
    p, q, a = variables("p q a")
    rules = [
        Rule(Atom("ToEnd·9", (p,)), (
            Atom("Succ·p", (p, q)), Atom(MARK_RUN_END, (q,)),
        )),
        Rule(Atom("ToEnd·9", (p,)), (
            Atom("Succ·p", (p, q)),
            Atom("Letter·p", (q, a)),
            Atom("ConfigLetter·T", (a,)),
            Atom("ToEnd·9", (q,)),
        )),
        Rule(Atom("Accept·9", ()), (
            Atom("Letter·p", (p, a)),
            Atom("AcceptLetter·T", (a,)),
            Atom("ToEnd·9", (p,)),
        )),
    ]
    return rules


def letter_class_tables(machine: TuringMachine) -> Instance:
    """Unary letter-class tables used by the query and views."""
    out = Instance()
    for letter in _config_letters(machine):
        out.add_tuple("ConfigLetter·T", (letter,))
    for letter in machine.input_alphabet:
        out.add_tuple("InputLetter·T", (letter,))
    for symbol in machine.tape_alphabet:
        out.add_tuple("AcceptLetter·T", (("q", machine.accept, symbol),))
        for state in (machine.accept, machine.reject):
            out.add_tuple("HaltLetter·T", (("q", state, symbol),))
    return out


def thm9_query(machine: TuringMachine) -> DatalogQuery:
    """``Q = BadlyShaped ∨ Accept`` over run-string instances."""
    rules = _badly_shaped_rules(machine, goal="Bad·9")
    rules += _accept_rules(machine)
    rules.append(Rule(Atom("Goal·9", ()), (Atom("Bad·9", ()),)))
    rules.append(Rule(Atom("Goal·9", ()), (Atom("Accept·9", ()),)))
    return DatalogQuery(DatalogProgram(tuple(rules)), "Goal·9", "Q_thm9")


def _prerun_rules(machine: TuringMachine) -> list[Rule]:
    """``V_prerun(x)``: x is the σInpEnd of a run segment whose final
    part contains a halting-state letter."""
    p, q, x, a = variables("p q x a")
    return [
        Rule(Atom("Fwd·V", (x, p)), (
            Atom(MARK_INP_END, (x,)), Atom("Succ·p", (x, p)),
        )),
        Rule(Atom("Fwd·V", (x, q)), (
            Atom("Fwd·V", (x, p)), Atom("Succ·p", (p, q)),
        )),
        Rule(Atom("ToEnd·V", (p,)), (
            Atom("Succ·p", (p, q)), Atom(MARK_RUN_END, (q,)),
        )),
        Rule(Atom("ToEnd·V", (p,)), (
            Atom("Succ·p", (p, q)),
            Atom("Letter·p", (q, a)),
            Atom("ConfigLetter·T", (a,)),
            Atom("ToEnd·V", (q,)),
        )),
        Rule(Atom("PreRun·V", (x,)), (
            Atom("Fwd·V", (x, p)),
            Atom("Letter·p", (p, a)),
            Atom("HaltLetter·T", (a,)),
            Atom("ToEnd·V", (p,)),
        )),
    ]


def thm9_views(machine: TuringMachine) -> ViewSet:
    """The Thm 9 views: input views + badly-shaped + pre-run."""
    x, y, a = variables("x y a")
    views = [
        View("VSucc", ConjunctiveQuery(
            (x, y), (Atom("Succ", (x, y)),), "VSucc")),
        View("VLetter", ConjunctiveQuery(
            (x, a), (Atom("Letter", (x, a)),), "VLetter")),
        View("VInpBegin", ConjunctiveQuery(
            (x,), (Atom(MARK_INP_BEGIN, (x,)),), "VIB")),
        View("VInpEnd", ConjunctiveQuery(
            (x,), (Atom(MARK_INP_END, (x,)),), "VIE")),
        View("Vbad", DatalogQuery(
            DatalogProgram(tuple(
                _badly_shaped_rules(machine, goal="Bad·V")
            )),
            "Bad·V",
            "Vbad",
        )),
        View("Vprerun", DatalogQuery(
            DatalogProgram(tuple(_prerun_rules(machine))),
            "PreRun·V",
            "Vprerun",
        )),
    ]
    return ViewSet(views)


@dataclass
class TuringSeparator:
    """The faithful separator: reconstruct the input, run the machine.

    On a view instance: accept if the badly-shaped view fired; else, if
    a pre-run is present, decode the input word from the input views and
    simulate the machine — :attr:`simulated_steps` is the Thm 9 cost
    metric that no computable bound can cap in general.
    """

    machine: TuringMachine
    tape_length: int
    simulated_steps: int = 0

    def boolean(self, view_instance: Instance) -> bool:
        if view_instance.tuples("Vbad"):
            return True
        if not view_instance.tuples("Vprerun"):
            return False
        word = self._decode_input(view_instance)
        trace = self.machine.run(word, tape_length=self.tape_length)
        self.simulated_steps += len(trace)
        return trace[-1].state == self.machine.accept

    def _decode_input(self, view_instance: Instance) -> tuple:
        succ = {u: v for u, v in view_instance.tuples("VSucc")}
        letter_at = {
            pos: letter
            for pos, letter in view_instance.tuples("VLetter")
        }
        begin = next(iter(view_instance.tuples("VInpBegin")))[0]
        word = []
        position = succ.get(begin)
        while position is not None and position in letter_at:
            letter = letter_at[position]
            if letter == MARK_INP_END:
                break
            word.append(letter)
            position = succ.get(position)
        return tuple(word)
