"""Incremental view maintenance for Datalog materializations.

A :class:`MaterializedView` keeps ``FPEval(Π, I)`` warm while the base
instance ``I`` changes: :meth:`~MaterializedView.insert` and
:meth:`~MaterializedView.retract` update the materialization with
delta-driven maintenance (counting for non-recursive strata, DRed for
recursive SCCs) instead of re-running the fixpoint.  The long-lived
service in :mod:`repro.serve` builds one of these per session.
"""

from repro.ivm.materialized import MaintenanceRound, MaterializedView

__all__ = ["MaintenanceRound", "MaterializedView"]
