"""Delta-driven incremental maintenance of a Datalog materialization.

A :class:`MaterializedView` owns a program, a *base* instance (the facts
the caller has asserted) and the full materialization
``state = FPEval(Π, base)``.  One :meth:`MaterializedView.apply` call is
one *maintenance round*: retractions and insertions are normalised into
a net base delta and pushed through the program one SCC stratum at a
time, dependencies first — exactly the schedule the stratified fixpoint
engine uses, so every stratum sees finalised deltas for everything it
reads.

Per-stratum algorithms:

* **Non-recursive strata** use *counting*: the view keeps the number of
  derivations of every fact, and a maintenance round computes the exact
  derivation-count change with the telescoping signed expansion
  ``Δ(R₁ ⋈ … ⋈ Rₙ) = Σᵢ old(R₁..Rᵢ₋₁) ⋈ ΔRᵢ ⋈ new(Rᵢ₊₁..Rₙ)`` — each
  changed rule instantiation is counted exactly once, with sign.  A fact
  is present iff its count is positive or it is base-asserted.
* **Recursive strata** use *DRed* (delete–rederive): overdelete the
  downward closure of the deletions with a semi-naive frontier against
  pre-round values, rederive each suspect that still has a derivation
  from the surviving facts (or is base-asserted), then propagate
  insertions — including rederivation cascades — with the engine's own
  semi-naive delta machinery (:func:`repro.core.evaluation.
  _delta_derivations`, shared join-plan cache included).

The insert-propagation phase is backend-aware: under the ``columnar``
backend (or when ``auto`` predicts a large join volume) frontier facts
are pushed through the PR-6 columnar delta plans in batches instead of
tuple-at-a-time search.  The counting and overdelete phases always run
interpreted — they join against *old* views of changed relations, a
mixed old/new shape the append-only columnar store cannot express.

Old views are never snapshotted eagerly: for a changed predicate ``p``
the pre-round relation is reconstructed lazily as
``old(p) = (state ∖ plus[p]) ∪ minus[p]`` from the net per-predicate
deltas, and unchanged predicates are read straight from ``state``.

Correctness contract (certified): after any round, ``state`` equals a
from-scratch ``FPEval(Π, base)``.  :meth:`MaterializedView.certificate`
emits this as an ``ivm`` claim for the independent replay checker, and
the Hypothesis suite in ``tests/ivm`` drives random update
interleavings against the batch oracle across backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.analysis.dependency import SCC, DependencyGraph
from repro.analysis.maintain import (
    MAINTAIN_RULE_LIMIT,
    MaintainReport,
    active_maintenance_guard,
    maintain_report,
)
from repro.core import stats as _stats
from repro.core.atoms import Atom, Fact
from repro.core.datalog import DatalogProgram, Rule
from repro.core.evaluation import (
    _delta_derivations,
    _PlanCache,
    _program_delta_patterns,
    _rule_derivations,
    default_optimize,
    fixpoint,
)
from repro.core.homomorphism import _bindings_for_row, _pattern, homomorphisms
from repro.core.instance import Instance
from repro.core.stats import EngineStats

Row = tuple[object, ...]
#: net per-predicate delta of one maintenance round (plus/minus rows)
Delta = dict[str, set[Row]]
#: anything :meth:`MaterializedView.apply` accepts as a fact
FactLike = Union[Atom, tuple[str, Iterable[object]]]

_EMPTY: frozenset[Row] = frozenset()


@dataclass(frozen=True)
class MaintenanceRound:
    """Summary of one :meth:`MaterializedView.apply` round."""

    index: int                        # 1-based round number
    backend: str                      # engine used for insert propagation
    inserted: int                     # net facts added to the state
    deleted: int                      # net facts removed from the state
    rederived: int                    # DRed suspects saved by rederivation
    plus: dict[str, frozenset[Row]]   # net additions, per predicate
    minus: dict[str, frozenset[Row]]  # net removals, per predicate

    def as_dict(self) -> dict[str, object]:
        """JSON-ready counters (the serve protocol's round report)."""
        return {
            "round": self.index,
            "backend": self.backend,
            "inserted": self.inserted,
            "deleted": self.deleted,
            "rederived": self.rederived,
        }


def _as_fact(obj: FactLike) -> Fact:
    """Normalise an ``Atom`` or ``(pred, args)`` pair into a ground fact."""
    if isinstance(obj, Atom):
        fact = obj
    else:
        pred, args = obj
        fact = Fact(str(pred), tuple(args))
    if not fact.is_ground():
        raise ValueError(f"facts must be ground, got {fact!r}")
    return fact


def _mixed_homomorphisms(
    atoms: Sequence[Atom],
    targets: Sequence[Instance],
    assignment: Mapping[object, object],
) -> Iterator[dict[object, object]]:
    """Backtracking join where each atom matches its *own* instance.

    The counting and overdelete phases join some body positions against
    the pre-round (*old*) view of a relation and others against the
    current state; :func:`repro.core.homomorphism.homomorphisms` assumes
    one target, so this is the same fewest-candidates-first search with
    a per-atom target.  Bodies are small, so recursion is fine here.
    """
    if not atoms:
        yield dict(assignment)
        return
    best = min(
        range(len(atoms)),
        key=lambda k: targets[k].count_matching(
            atoms[k].pred, _pattern(atoms[k], assignment)
        ),
    )
    atom, target = atoms[best], targets[best]
    rest_atoms = list(atoms[:best]) + list(atoms[best + 1:])
    rest_targets = list(targets[:best]) + list(targets[best + 1:])
    for row in target.matching(atom.pred, _pattern(atom, assignment)):
        new = _bindings_for_row(atom, row, assignment)
        if new is None:
            continue
        merged = {**assignment, **new}
        yield from _mixed_homomorphisms(rest_atoms, rest_targets, merged)


class MaterializedView:
    """A live ``FPEval(Π, I)`` maintained under base-fact updates.

    ``optimize=True`` (default: the ambient
    :func:`repro.core.evaluation.default_optimize`) runs the universally
    sound syntactic optimizer passes **once at construction** — they
    preserve every IDB relation on every instance, so the maintained
    state stays the fixpoint of the *source* program too, which is what
    :meth:`certificate` claims.  Instance-specific passes (join
    reordering, magic sets) are deliberately not applied: the instance
    keeps changing, and the whole materialization is maintained, not one
    goal.

    ``backend`` picks the engine for insert propagation (``None`` → the
    ambient :func:`repro.core.backend.default_backend`; ``"auto"``
    resolves per round from the predicted join volume).
    """

    def __init__(
        self,
        program: DatalogProgram,
        base: Optional[Instance] = None,
        *,
        optimize: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.source_program = program
        if optimize is None:
            optimize = default_optimize()
        self.optimize = bool(optimize)
        if self.optimize:
            from repro.analysis.optimize import (
                OPTIMIZE_RULE_LIMIT,
                syntactic_fixpoint_program,
            )

            if len(program.rules) <= OPTIMIZE_RULE_LIMIT:
                with _stats.suspended():
                    program = syntactic_fixpoint_program(program)
        self.program = program
        self.backend = backend
        self.base = base.copy() if base is not None else Instance()
        self.rounds = 0

        graph = DependencyGraph(program)
        self._sccs = graph.sccs
        self._idb: set[str] = set(graph.idb)
        self._recursive: set[str] = graph.recursive_predicates()
        self._counted: set[str] = self._idb - self._recursive
        self._delta_patterns = _program_delta_patterns(program)
        # join plans persist across rounds: the same delta rules replay
        # every round, exactly the semi-naive reuse argument
        self._plans = _PlanCache(None)
        # derivation counts for facts of counting-maintained predicates
        self._counts: dict[tuple[str, Row], int] = {}
        # the static maintainability plan decides the per-stratum
        # strategy: recursive strata the analysis proves counting-safe
        # are maintained by counting over their effective (non-vacuous)
        # rules instead of paying the DRed protocol
        self._maintain_plan: Optional[MaintainReport] = None
        self._counting_rules: dict[int, tuple[Rule, ...]] = {}
        self._source_claims: Optional[dict[str, object]] = None
        if len(program.rules) <= MAINTAIN_RULE_LIMIT:
            with _stats.suspended():
                self._maintain_plan = maintain_report(
                    program, dependency=graph
                )
            for stratum in self._maintain_plan.strata:
                if stratum.recursive and stratum.counting_safe:
                    self._counting_rules[stratum.index] = tuple(
                        program.rules[i]
                        for i in stratum.effective_rule_indices
                    )
                    self._recursive -= set(stratum.predicates)
                    self._counted |= set(stratum.predicates)
        self._initialize()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        """From-scratch fixpoint + derivation counts for counted strata."""
        self.state = fixpoint(
            self.program, self.base, optimize=False, backend=self.backend
        )
        counts = self._counts
        counts.clear()
        for scc in self._sccs:
            rules = self._counted_rules_for(scc)
            if rules is None:
                continue
            for rule in rules:
                for fact in _rule_derivations(rule, self.state):
                    key = (fact.pred, fact.args)
                    counts[key] = counts.get(key, 0) + 1

    def _counted_rules_for(self, scc: SCC) -> Optional[tuple[Rule, ...]]:
        """The rules to count for ``scc``, or ``None`` if it runs DRed.

        Non-recursive strata count all their rules; recursive strata
        the plan proves counting-safe count their effective rules (the
        vacuous recursive rules derive nothing their subsumers do not,
        and *must* be excluded from counting symmetrically at
        initialization and maintenance time).
        """
        if not scc.recursive:
            return scc.rules
        return self._counting_rules.get(scc.index)

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    def insert(self, facts: Iterable[FactLike]) -> MaintenanceRound:
        """One maintenance round adding ``facts`` to the base."""
        return self.apply(inserts=facts)

    def retract(self, facts: Iterable[FactLike]) -> MaintenanceRound:
        """One maintenance round removing ``facts`` from the base.

        Retracting a fact that is only *derived* (never base-asserted)
        is a no-op: updates address the base instance, the derived
        closure follows from the program.
        """
        return self.apply(retracts=facts)

    def query(self, pred: str) -> frozenset[Row]:
        """The maintained relation for ``pred``."""
        return self.state.tuples(pred)

    def recompute(self) -> Instance:
        """A from-scratch ``FPEval(Π, base)`` (the correctness oracle)."""
        with _stats.suspended():
            return fixpoint(
                self.program, self.base, optimize=False,
                backend="interpreted",
            )

    def maintenance_plan(self) -> Optional[MaintainReport]:
        """The static maintainability report this view was planned from
        (``None`` when the program exceeds the analysis rule limit)."""
        return self._maintain_plan

    def maintenance_strategies(self) -> dict[str, str]:
        """``pred -> "counting" | "dred"`` as actually maintained."""
        return {
            pred: ("dred" if pred in self._recursive else "counting")
            for pred in self._idb
        }

    def predict_delta(self, update_size: int = 1) -> Optional[int]:
        """A sound bound on |Δ| for a round changing ``update_size``
        base facts against the *current* base (admission control)."""
        if self._maintain_plan is None:
            return None
        with _stats.suspended():
            report = maintain_report(
                self.program, instance=self.base,
                update_size=max(0, update_size),
            )
        return report.total_delta_bound

    def _maintain_claims(self) -> Optional[dict[str, object]]:
        """The source program's maintainability classification.

        Cached: strategy/insert-monotone/counting-safe claims are
        instance-independent, and the certificate must describe the
        *source* program (what the independent checker re-derives),
        not the optimized program this view maintains.
        """
        if self._source_claims is None:
            if len(self.source_program.rules) > MAINTAIN_RULE_LIMIT:
                return None
            with _stats.suspended():
                report = maintain_report(self.source_program)
            self._source_claims = report.classification()
        return self._source_claims

    def certificate(
        self, meta: Optional[dict[str, object]] = None
    ) -> dict[str, object]:
        """An ``ivm`` certificate: state ≡ from-scratch fixpoint.

        The claim carries the *source* program (pre-optimizer), the
        current base and the maintained state; the independent checker
        replays a naive fixpoint of the base and compares.
        """
        from repro.certify.emit import certificate as _certificate
        from repro.certify.emit import claim_ivm_state

        claim = claim_ivm_state(
            self.source_program, self.base, self.state,
            maintain=self._maintain_claims(),
        )
        merged: dict[str, object] = {
            "subsystem": "ivm", "rounds": self.rounds,
        }
        if meta:
            merged.update(meta)
        return _certificate([claim], meta=merged)

    # ------------------------------------------------------------------
    # one maintenance round
    # ------------------------------------------------------------------
    def apply(
        self,
        inserts: Iterable[FactLike] = (),
        retracts: Iterable[FactLike] = (),
        stats: Optional[EngineStats] = None,
    ) -> MaintenanceRound:
        """Apply one batch of updates; retractions act before insertions.

        Returns the round summary with the net per-predicate deltas.
        The same fact retracted and re-inserted in one round is a net
        no-op all the way down (including the state's positional
        indexes — the tombstone-resurrection seam this subsystem leans
        on).
        """
        with _stats.maybe_collecting(stats):
            collector = _stats.active()
            guard = active_maintenance_guard()
            base_before = self.base.copy() if guard is not None else None
            retract_facts = [_as_fact(f) for f in retracts]
            insert_facts = [_as_fact(f) for f in inserts]

            removed: list[Fact] = []
            for fact in retract_facts:
                if fact in self.base:
                    self.base.discard(fact)
                    removed.append(fact)
            added: list[Fact] = []
            for fact in insert_facts:
                if self.base.add(fact):
                    added.append(fact)
            added_set = set(added)
            removed_set = set(removed)
            net_removed = [f for f in removed if f not in added_set]
            net_added = [f for f in added if f not in removed_set]

            plus: Delta = {}
            minus: Delta = {}
            old_cache: dict[str, Instance] = {}
            rec_del: dict[str, set[Row]] = {}
            rec_add: dict[str, set[Row]] = {}

            # ---- base phase: EDB and counted predicates settle now;
            # base changes to recursive predicates are seeds for DRed.
            for fact in net_removed:
                pred, row = fact.pred, fact.args
                if pred in self._recursive:
                    rec_del.setdefault(pred, set()).add(row)
                elif pred in self._counted:
                    if self._counts.get((pred, row), 0) == 0:
                        self._apply_del(pred, row, plus, minus)
                else:
                    self._apply_del(pred, row, plus, minus)
            for fact in net_added:
                pred, row = fact.pred, fact.args
                if pred in self._recursive:
                    rec_add.setdefault(pred, set()).add(row)
                elif not self.state.has_tuple(pred, row):
                    self._apply_add(pred, row, plus, minus)

            backend = self._resolve_backend(collector)
            rederived = 0
            for scc in self._sccs:
                counted_rules = self._counted_rules_for(scc)
                if counted_rules is None:
                    rederived += self._maintain_recursive(
                        scc, plus, minus, old_cache,
                        rec_del, rec_add, backend, collector,
                    )
                else:
                    self._maintain_counted(
                        scc, counted_rules, plus, minus, old_cache,
                        collector,
                    )

            self.rounds += 1
            inserted = sum(len(rows) for rows in plus.values())
            deleted = sum(len(rows) for rows in minus.values())
            if collector is not None:
                collector.ivm_rounds += 1
                collector.ivm_inserted += inserted
                collector.ivm_deleted += deleted
                collector.ivm_rederived += rederived
            round_ = MaintenanceRound(
                index=self.rounds,
                backend=backend,
                inserted=inserted,
                deleted=deleted,
                rederived=rederived,
                plus={p: frozenset(r) for p, r in plus.items() if r},
                minus={p: frozenset(r) for p, r in minus.items() if r},
            )
            if guard is not None:
                guard.check_round(
                    self, round_,
                    update_size=len(net_removed) + len(net_added),
                    base_before=base_before,
                )
            return round_

    # ------------------------------------------------------------------
    # delta bookkeeping
    # ------------------------------------------------------------------
    def _apply_add(
        self, pred: str, row: Row, plus: Delta, minus: Delta
    ) -> bool:
        if not self.state.add_tuple(pred, row):
            return False
        dropped = minus.get(pred)
        if dropped is not None and row in dropped:
            dropped.discard(row)  # same-round delete + re-add: net no-op
        else:
            plus.setdefault(pred, set()).add(row)
        return True

    def _apply_del(
        self, pred: str, row: Row, plus: Delta, minus: Delta
    ) -> bool:
        fact = Fact(pred, row)
        if fact not in self.state:
            return False
        self.state.discard(fact)
        grown = plus.get(pred)
        if grown is not None and row in grown:
            grown.discard(row)  # same-round add + delete: net no-op
        else:
            minus.setdefault(pred, set()).add(row)
        return True

    def _old_view(
        self, pred: str, plus: Delta, minus: Delta,
        cache: dict[str, Instance],
    ) -> Instance:
        """The pre-round relation of a changed predicate, built lazily."""
        view = cache.get(pred)
        if view is None:
            view = Instance()
            dropped = plus.get(pred, _EMPTY)
            for row in self.state.tuples(pred):
                if row not in dropped:
                    view.add_tuple(pred, row)
            for row in minus.get(pred, _EMPTY):
                view.add_tuple(pred, row)
            cache[pred] = view
        return view

    def _resolve_backend(self, collector: Optional[EngineStats]) -> str:
        """The engine for this round's insert propagation."""
        from repro.core.backend import AutoBackend, default_backend

        name = self.backend if self.backend is not None else default_backend()
        if name != "auto":
            return name
        from repro.analysis.cost import predicted_join_volume
        from repro.core.backend import _AUTO_RESOLUTIONS

        with _stats.suspended():
            volume = predicted_join_volume(self.program, self.state)
        threshold = AutoBackend.DEFAULT_THRESHOLD
        chosen = "columnar" if volume >= threshold else "interpreted"
        _AUTO_RESOLUTIONS.append(
            {"backend": chosen, "volume": volume, "threshold": threshold}
        )
        if collector is not None:
            if chosen == "columnar":
                collector.auto_backend_columnar += 1
            else:
                collector.auto_backend_interpreted += 1
        return chosen

    # ------------------------------------------------------------------
    # counting maintenance (non-recursive strata)
    # ------------------------------------------------------------------
    def _maintain_counted(
        self, scc: SCC, rules: tuple[Rule, ...], plus: Delta, minus: Delta,
        old_cache: dict[str, Instance],
        collector: Optional[EngineStats] = None,
    ) -> None:
        changed = {p for p, rows in plus.items() if rows}
        changed |= {p for p, rows in minus.items() if rows}
        if not changed:
            return
        engaged = False
        delta_counts: dict[Row, int] = {}
        for rule in rules:
            body = rule.body
            hit = [i for i, a in enumerate(body) if a.pred in changed]
            if not hit:
                continue
            engaged = True
            for i in hit:
                atom = body[i]
                rest_atoms: list[Atom] = []
                rest_targets: list[Instance] = []
                for j, other in enumerate(body):
                    if j == i:
                        continue
                    # telescoping: positions before the delta read the
                    # old view, positions after read the new state
                    if j < i and other.pred in changed:
                        rest_targets.append(
                            self._old_view(other.pred, plus, minus, old_cache)
                        )
                    else:
                        rest_targets.append(self.state)
                    rest_atoms.append(other)
                for sign, rows in (
                    (1, plus.get(atom.pred, _EMPTY)),
                    (-1, minus.get(atom.pred, _EMPTY)),
                ):
                    for row in rows:
                        if len(row) != atom.arity:
                            continue
                        seed = _bindings_for_row(atom, row, {})
                        if seed is None:
                            continue
                        for hom in _mixed_homomorphisms(
                            rest_atoms, rest_targets, seed
                        ):
                            head = rule.head.substitute(hom)
                            delta_counts[head.args] = (
                                delta_counts.get(head.args, 0) + sign
                            )
        if engaged and collector is not None:
            collector.maintain_counting_strata += 1
        pred = next(iter(scc.predicates))
        for row, change in delta_counts.items():
            if not change:
                continue
            key = (pred, row)
            count = self._counts.get(key, 0) + change
            if count < 0:
                raise RuntimeError(
                    f"ivm: negative derivation count for {pred}{row!r}"
                )
            if count:
                self._counts[key] = count
            else:
                self._counts.pop(key, None)
            present = count > 0 or self.base.has_tuple(pred, row)
            if present:
                self._apply_add(pred, row, plus, minus)
            else:
                self._apply_del(pred, row, plus, minus)

    # ------------------------------------------------------------------
    # DRed maintenance (recursive strata)
    # ------------------------------------------------------------------
    def _maintain_recursive(
        self,
        scc: SCC,
        plus: Delta,
        minus: Delta,
        old_cache: dict[str, Instance],
        rec_del: dict[str, set[Row]],
        rec_add: dict[str, set[Row]],
        backend: str,
        collector: Optional[EngineStats],
    ) -> int:
        preds = scc.predicates
        reads = {a.pred for rule in scc.rules for a in rule.body}
        ext_minus = {
            p: rows for p, rows in minus.items()
            if rows and p in reads and p not in preds
        }
        ext_plus = {
            p: rows for p, rows in plus.items()
            if rows and p in reads and p not in preds
        }
        del_seeds = {p: rec_del.get(p, set()) for p in preds}
        add_seeds = {p: set(rec_add.get(p, set())) for p in preds}

        suspects: dict[str, set[Row]] = {p: set() for p in preds}
        rederived = 0
        deletion_work = bool(ext_minus) or any(del_seeds.values())
        insert_work = bool(ext_plus) or any(add_seeds.values())
        if collector is not None:
            if deletion_work or insert_work:
                collector.maintain_dred_strata += 1
            if insert_work and not deletion_work:
                # insert-only round: the overdelete/rederive protocol
                # is skipped entirely, semi-naive insertion suffices
                collector.maintain_skipped_rederive += 1
        if deletion_work:
            changed = {p for p, rows in plus.items() if rows}
            changed |= {p for p, rows in minus.items() if rows}

            # ---- phase A: overdelete the downward closure -------------
            frontier: dict[str, set[Row]] = {
                p: set(rows) for p, rows in ext_minus.items()
            }
            for p, rows in del_seeds.items():
                live = {r for r in rows if self.state.has_tuple(p, r)}
                if live:
                    suspects[p] |= live
                    frontier.setdefault(p, set()).update(live)
            while frontier:
                fresh: dict[str, set[Row]] = {}
                for rule in scc.rules:
                    body = rule.body
                    for i, atom in enumerate(body):
                        rows = frontier.get(atom.pred)
                        if not rows:
                            continue
                        rest_atoms: list[Atom] = []
                        rest_targets: list[Instance] = []
                        for j, other in enumerate(body):
                            if j == i:
                                continue
                            # pre-round values: external changed preds
                            # through their old view; this SCC's own
                            # relations are still untouched in state
                            if other.pred in changed and \
                                    other.pred not in preds:
                                rest_targets.append(self._old_view(
                                    other.pred, plus, minus, old_cache
                                ))
                            else:
                                rest_targets.append(self.state)
                            rest_atoms.append(other)
                        for row in rows:
                            if len(row) != atom.arity:
                                continue
                            seed = _bindings_for_row(atom, row, {})
                            if seed is None:
                                continue
                            for hom in _mixed_homomorphisms(
                                rest_atoms, rest_targets, seed
                            ):
                                head = rule.head.substitute(hom)
                                hrow = head.args
                                if (
                                    hrow not in suspects[head.pred]
                                    and self.state.has_tuple(head.pred, hrow)
                                ):
                                    suspects[head.pred].add(hrow)
                                    fresh.setdefault(
                                        head.pred, set()
                                    ).add(hrow)
                frontier = fresh
            for p, rows in suspects.items():
                for row in rows:
                    self._apply_del(p, row, plus, minus)

            # ---- phase B: rederive suspects with surviving support ----
            by_head: dict[str, list[Rule]] = {}
            for rule in scc.rules:
                by_head.setdefault(rule.head.pred, []).append(rule)
            for p, rows in suspects.items():
                for row in sorted(rows, key=repr):
                    saved = self.base.has_tuple(p, row)
                    if not saved:
                        for rule in by_head.get(p, ()):
                            seed = _bindings_for_row(rule.head, row, {})
                            if seed is None:
                                continue
                            if next(homomorphisms(
                                rule.body, self.state, fixed=seed
                            ), None) is not None:
                                saved = True
                                break
                    if saved:
                        rederived += 1
                        self._apply_add(p, row, plus, minus)
                        add_seeds.setdefault(p, set()).add(row)

        # ---- phase C: propagate insertions semi-naively ---------------
        frontier = {p: set(rows) for p, rows in ext_plus.items()}
        for p, rows in add_seeds.items():
            suspect_rows = suspects.get(p, _EMPTY)
            for row in rows:
                if self.state.has_tuple(p, row):
                    # already present: only a rederived suspect still
                    # cascades (its overdeleted consequences need it);
                    # a base add of an already-derived fact changes
                    # nothing downstream — the state is closed under
                    # the rules, so its consequences are all present
                    if row in suspect_rows:
                        frontier.setdefault(p, set()).add(row)
                elif self._apply_add(p, row, plus, minus):
                    frontier.setdefault(p, set()).add(row)
        frontier = {p: rows for p, rows in frontier.items() if rows}
        if not frontier:
            return rederived
        tracked = set(frontier) | set(preds)
        rules = list(zip(scc.rule_indices, scc.rules))
        if backend == "columnar":
            rederived += self._propagate_columnar(
                rules, frontier, tracked, suspects, plus, minus, collector
            )
        else:
            rederived += self._propagate_interpreted(
                rules, frontier, tracked, suspects, plus, minus
            )
        return rederived

    def _propagate_interpreted(
        self,
        rules: list[tuple[int, Rule]],
        frontier: dict[str, set[Row]],
        tracked: set[str],
        suspects: dict[str, set[Row]],
        plus: Delta,
        minus: Delta,
    ) -> int:
        """Semi-naive insert propagation through the shared plan cache."""
        rederived = 0
        while frontier:
            delta = Instance()
            for p, rows in frontier.items():
                for row in rows:
                    delta.add_tuple(p, row)
            fresh: dict[str, set[Row]] = {}
            for key, rule in rules:
                for fact in _delta_derivations(
                    rule, self.state, delta, tracked, key,
                    self._plans, self._delta_patterns[key],
                ):
                    if self._apply_add(fact.pred, fact.args, plus, minus):
                        if fact.args in suspects.get(fact.pred, _EMPTY):
                            rederived += 1
                        fresh.setdefault(fact.pred, set()).add(fact.args)
            frontier = fresh
        return rederived

    def _propagate_columnar(
        self,
        rules: list[tuple[int, Rule]],
        frontier: dict[str, set[Row]],
        tracked: set[str],
        suspects: dict[str, set[Row]],
        plus: Delta,
        minus: Delta,
        collector: Optional[EngineStats],
    ) -> int:
        """Insert propagation through the columnar delta plans.

        The store is rebuilt from the post-deletion state (it is
        append-only, and phase C never removes facts), then frontier
        rows are pushed through each rule's compiled delta plan as one
        batch per (rule, position) instead of one search per tuple.
        """
        from repro.core.columnar import _ProgramPlans, _run_plan, _Store

        store = _Store(self.state)
        plans = _ProgramPlans(store)
        rederived = 0
        while frontier:
            fresh: dict[str, set[Row]] = {}
            for _key, rule in rules:
                body = rule.body
                for i, atom in enumerate(body):
                    if atom.pred not in tracked:
                        continue
                    rows = frontier.get(atom.pred)
                    if not rows:
                        continue
                    plan = plans.delta(rule, i)
                    head_pred = rule.head.pred
                    for hrow in _run_plan(
                        plan, store, collector, seed_rows=list(rows)
                    ):
                        if self._apply_add(head_pred, hrow, plus, minus):
                            store.add(head_pred, hrow)
                            if hrow in suspects.get(head_pred, _EMPTY):
                                rederived += 1
                            fresh.setdefault(head_pred, set()).add(hrow)
            frontier = fresh
        return rederived
