"""Lower-bound reductions for monotonic determinacy (Prop. 9, §6).

* Lemma 7: for a single view ``(V, Q_V)``, the query ``Q`` is
  monotonically determined over ``{V}`` iff ``Q ≡ Q_V``.  Reduces
  equivalence (NP-hard for CQs, Π₂ᵖ for UCQs, 2ExpTime for CQ vs MDL,
  undecidable for Datalog) to monotonic determinacy.
* Lemma 8: ``Q1 ⊑ Q2`` iff ``Q = (Q1 ∧ e) ∨ Q2`` is monotonically
  determined over the atomic views of every EDB except the fresh nullary
  ``e``.  Reduces containment to monotonic determinacy with *atomic*
  views.

These constructors are used by the T2-LOWER benchmark to verify the
reductions' faithfulness on decidable source instances.
"""

from __future__ import annotations

from typing import Union

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.ucq import UCQ, as_ucq
from repro.views.view import View, ViewSet, atomic_views

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]

EXTRA_MARKER = "E·extra"


def _as_datalog(query: QueryLike, goal: str, suffix: str) -> DatalogQuery:
    """Coerce to a Datalog query with the given goal name."""
    if isinstance(query, (ConjunctiveQuery, UCQ)):
        disjuncts = as_ucq(query).disjuncts
        rules = tuple(
            Rule(Atom(goal, d.head_vars), d.atoms) for d in disjuncts
        )
        return DatalogQuery(DatalogProgram(rules), goal)
    renamed = query.relabel_idbs(suffix)
    rules = renamed.program.rules + tuple(
        Rule(
            Atom(goal, r.head.args), r.body
        )
        for r in renamed.program.rules_for(renamed.goal)
    )
    # keep the old goal rules too (the goal may feed recursion)
    return DatalogQuery(DatalogProgram(rules), goal)


def equivalence_to_determinacy(
    query: QueryLike, view_query: QueryLike
) -> tuple[QueryLike, ViewSet]:
    """Lemma 7 instance: ``query`` over the single view ``view_query``.

    The returned pair is monotonically determined iff the two queries
    are equivalent.
    """
    view = View("V·eq", view_query)
    return query, ViewSet([view])


def containment_to_determinacy(
    sub: QueryLike, sup: QueryLike
) -> tuple[DatalogQuery, ViewSet]:
    """Lemma 8 instance: ``(sub ∧ e) ∨ sup`` over atomic views.

    The query is monotonically determined over the views iff
    ``sub ⊑ sup``.
    """
    q1 = _as_datalog(sub, "Goal·1", "·L8a")
    q2 = _as_datalog(sup, "Goal·2", "·L8b")
    rules = list(q1.program.rules) + list(q2.program.rules)
    rules.append(
        Rule(Atom("Goal·L8", ()), (Atom(q1.goal, tuple(
            _head_vars(q1))), Atom(EXTRA_MARKER, ())))
    )
    rules.append(
        Rule(Atom("Goal·L8", ()), (Atom(q2.goal, tuple(_head_vars(q2))),))
    )
    query = DatalogQuery(DatalogProgram(tuple(rules)), "Goal·L8")

    # atomic views for every EDB except the marker e
    edbs = {
        p: query.program.arity_of(p)
        for p in query.program.edb_predicates()
        if p != EXTRA_MARKER
    }
    views = ViewSet(atomic_views(edbs, prefix="V·"))
    return query, views


def _head_vars(query: DatalogQuery) -> tuple:
    from repro.core.terms import Variable

    return tuple(Variable(f"h{i}") for i in range(query.arity))
