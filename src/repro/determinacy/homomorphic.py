"""Homomorphic determinacy (§3, Lemma 4).

``Q`` is homomorphically determined by ``V`` when every homomorphism
``h : V(I1) → V(I2)`` carries answers of ``Q`` on ``I1`` to answers on
``I2``.  Lemma 4 shows that for Datalog queries and views this coincides
with monotonic determinacy.  The helpers here let tests and benchmarks
*witness* both directions on concrete instances.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.homomorphism import homomorphisms, _instance_as_atoms
from repro.core.instance import Instance
from repro.core.ucq import UCQ
from repro.views.view import ViewSet

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]


def _evaluate(query: QueryLike, instance: Instance) -> set[tuple]:
    return query.evaluate(instance)


def homomorphic_violation(
    query: QueryLike,
    views: ViewSet,
    left: Instance,
    right: Instance,
    max_homs: int = 200,
) -> Optional[dict]:
    """A homomorphism ``V(left) → V(right)`` violating homomorphic
    determinacy on this pair, or None.

    Enumerates up to ``max_homs`` homomorphisms between the view images
    and checks that each maps ``Q(left)`` into ``Q(right)``.
    """
    left_image = views.image(left)
    right_image = views.image(right)
    left_answers = _evaluate(query, left)
    if not left_answers:
        return None
    right_answers = _evaluate(query, right)
    pattern, var_of = _instance_as_atoms(left_image)
    count = 0
    for hom in homomorphisms(pattern, right_image):
        count += 1
        element_map = {e: hom[v] for e, v in var_of.items()}
        for answer in left_answers:
            if not all(a in element_map for a in answer):
                continue
            mapped = tuple(element_map[a] for a in answer)
            if mapped not in right_answers:
                return element_map
        if count >= max_homs:
            break
    return None


def monotonic_violation(
    query: QueryLike,
    views: ViewSet,
    left: Instance,
    right: Instance,
) -> Optional[tuple]:
    """An answer witnessing a monotonic-determinacy violation on a pair.

    Requires ``V(left) ⊆ V(right)``; returns an answer in ``Q(left)``
    missing from ``Q(right)``, or None.
    """
    if not views.image(left) <= views.image(right):
        return None
    missing = _evaluate(query, left) - _evaluate(query, right)
    return next(iter(missing), None)
