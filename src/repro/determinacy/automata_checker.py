"""The Thm 3/4-style checker for FGDL/MDL queries and views.

The paper's procedure intersects an automaton for ``ETEST(Q, V)`` — view
images of approximations with inverted view definitions, all of bounded
treewidth — with an automaton for ``¬Q`` and checks emptiness.  Our
rendering keeps the same skeleton with one substitution (documented in
DESIGN.md §4): instead of a two-way alternating automaton for ``¬Q`` we
*evaluate ``Q`` exactly* on each generated finite test instance, and we
drive generation from the forward automaton's language (equivalently,
from the approximation stream).  The result is

* an exact refuter: a failing test is a genuine counterexample,
* a bounded verifier instrumented with the treewidth quantities the
  theorems turn on: the width of the standard decompositions and the
  Lemma 2/Lemma 3 bounds on view-image treewidth.

For CQ/UCQ queries use :mod:`repro.determinacy.cq_query`, which is fully
exact.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from repro.core.approximation import approximation_trees, tree_to_cq
from repro.core.containment import Verdict
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.normalization import is_normalized, normalize
from repro.core.ucq import UCQ
from repro.td.heuristics import decompose, decomposition_of_expansion
from repro.views.view import ViewSet
from repro.determinacy.result import DeterminacyResult
from repro.determinacy.tests import tests_for_approximation, test_succeeds

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]


def lemma3_bound(k: int, r: float) -> float:
    """The view-image treewidth bound ``k(k^{r+1}-1)/(k-1)`` of Lemma 3."""
    if k <= 1:
        return r + 1
    if math.isinf(r):
        return math.inf
    return k * (k ** (r + 1) - 1) / (k - 1)


def decide_fgdl(
    query: DatalogQuery,
    views: ViewSet,
    approx_depth: int = 4,
    view_depth: int = 3,
    max_tests: Optional[int] = None,
    normalize_mdl: bool = True,
) -> DeterminacyResult:
    """Theorem 3/4 pipeline at laptop scale (see module docstring).

    Statistics recorded: ``k`` (max width of standard decompositions
    seen), ``image_treewidth`` (max heuristic width of the view images),
    ``lemma3_bound`` (the paper's bound for the MDL + connected-CQ-views
    case), ``tests_executed``.
    """
    worked_query = query
    if (
        normalize_mdl
        and query.program.is_monadic()
        and not is_normalized(query)
    ):
        worked_query = normalize(query)

    k_seen = 0
    image_width_seen = 0
    executed = 0
    r = views.max_definition_radius()

    for tree in approximation_trees(worked_query, approx_depth):
        decomposition = decomposition_of_expansion(tree)
        k_seen = max(k_seen, decomposition.width())
        approximation = tree_to_cq(tree)
        image = views.image(approximation.canonical_database())
        if len(image):
            image_width_seen = max(
                image_width_seen, decompose(image).width()
            )
        for test in tests_for_approximation(
            approximation, views, view_depth
        ):
            executed += 1
            if not test_succeeds(test, worked_query):
                return DeterminacyResult(
                    Verdict.NO,
                    "ETEST pipeline (Thm 3/4, bounded)",
                    test,
                    f"failing test after {executed} tests",
                    _stats(k_seen, image_width_seen, r, executed),
                )
            if max_tests is not None and executed >= max_tests:
                return DeterminacyResult(
                    Verdict.UNKNOWN,
                    "ETEST pipeline (Thm 3/4, bounded)",
                    None,
                    f"test budget {max_tests} exhausted",
                    _stats(k_seen, image_width_seen, r, executed),
                )
    return DeterminacyResult(
        Verdict.UNKNOWN,
        "ETEST pipeline (Thm 3/4, bounded)",
        None,
        f"all {executed} tests up to depth {approx_depth} succeed",
        _stats(k_seen, image_width_seen, r, executed),
    )


def _stats(k: int, image_width: int, r: float, executed: int) -> dict:
    return {
        "k": k,
        "image_treewidth": image_width,
        "lemma3_bound": lemma3_bound(k, r),
        "tests_executed": executed,
    }
