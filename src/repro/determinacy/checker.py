"""The monotonic-determinacy checker.

:func:`decide_monotonic_determinacy` dispatches by what the *semantic
analyzer* establishes about the query, not by its surface class alone:

* CQ / UCQ query — *exact* decision via the forward–backward candidate
  and automata containment (Prop. 8 / Thm 5);
* Datalog query that :func:`repro.analysis.semantics.boundedness_report`
  proves bounded — reduced to its equivalent UCQ and decided exactly on
  the same route (the reduction itself is certified by a
  ``bounded_unfolding`` claim);
* genuinely recursive query — the canonical-test procedure of Lemma 5,
  bounded by an expansion-depth budget.  ``NO`` answers are always exact
  (a failing test is a genuine counterexample); ``UNKNOWN`` reports the
  budget.

Verdicts carry :mod:`repro.certify` certificates (see
:mod:`repro.determinacy.certificates`), validated downstream by the
independent checker.

The bounded branch is the honest rendering of the paper's landscape:
full decidability only holds for the restricted fragments of Thms 3–5,
and is *impossible* in general (Thm 6, Prop. 9).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Union

from repro.core.containment import Verdict
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.ucq import UCQ
from repro.views.view import ViewSet
from repro.determinacy.cq_query import decide_cq_ucq
from repro.determinacy.result import DeterminacyResult
from repro.determinacy.tests import canonical_tests, test_succeeds

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]


def _test_space_is_finite(query: QueryLike, views: ViewSet) -> bool:
    """Whether the canonical-test space is finite.

    True when the query is a CQ/UCQ (finitely many approximations) and
    every view definition is a CQ/UCQ (finitely many inversion choices
    per fact).  In that case exhausting the tests *decides* monotonic
    determinacy (Lemma 5), so the checker can answer YES.  Bounded
    Datalog queries reach here already reduced to their UCQ, so they
    profit from the finite case too.
    """
    if not isinstance(query, (ConjunctiveQuery, UCQ)):
        return False
    return views.fragments() <= {"CQ", "UCQ"}


def check_tests(
    query: QueryLike,
    views: ViewSet,
    approx_depth: int = 4,
    view_depth: int = 3,
    max_tests: Optional[int] = None,
    certify: bool = True,
    extra_claims: Sequence[dict] = (),
) -> DeterminacyResult:
    """Run the canonical-test procedure up to the given budgets.

    When the test space is finite (CQ/UCQ query and views) and no budget
    truncated the enumeration, a clean pass is an exact YES.  With
    ``certify`` a NO ships the failing test as a counterexample-pair
    certificate, and a finite-space YES ships one membership claim per
    test (``extra_claims`` are prepended, e.g. a bounded→UCQ reduction).
    """
    from repro.determinacy.certificates import (
        exhaustive_tests_certificate,
        negative_certificate,
    )

    executed = 0
    passed = []
    for test in canonical_tests(query, views, approx_depth, view_depth):
        executed += 1
        if not test_succeeds(test, query):
            return DeterminacyResult(
                Verdict.NO,
                "canonical tests (Lemma 5)",
                test,
                f"failing test found after {executed} tests",
                {"tests_executed": executed},
                negative_certificate(query, views, test, extra_claims)
                if certify
                else None,
            )
        passed.append(test)
        if max_tests is not None and executed >= max_tests:
            return DeterminacyResult(
                Verdict.UNKNOWN,
                "canonical tests (Lemma 5)",
                None,
                f"test budget {max_tests} exhausted",
                {"tests_executed": executed},
            )
    if _test_space_is_finite(query, views):
        return DeterminacyResult(
            Verdict.YES,
            "canonical tests (Lemma 5, finite test space)",
            None,
            f"all {executed} tests succeed and the test space is finite",
            {"tests_executed": executed},
            exhaustive_tests_certificate(
                query, views, passed, extra_claims
            )
            if certify
            else None,
        )
    return DeterminacyResult(
        Verdict.UNKNOWN,
        "canonical tests (Lemma 5)",
        None,
        (
            f"all {executed} tests up to approximation depth "
            f"{approx_depth} / view depth {view_depth} succeed"
        ),
        {"tests_executed": executed},
    )


def _decide_exact(
    query: Union[ConjunctiveQuery, UCQ],
    views: ViewSet,
    certify: bool,
    extra_claims: Sequence[dict],
    approx_depth: int,
    view_depth: int,
) -> Optional[DeterminacyResult]:
    """The exact CQ/UCQ route, with certificates; None on unsupported
    shapes (constants, ...)."""
    from repro.determinacy.certificates import (
        find_failing_test,
        negative_certificate,
        positive_certificate,
    )

    try:
        result, rewriting = decide_cq_ucq(query, views)
    except ValueError:
        return None
    if not certify:
        return result
    if result.verdict is Verdict.YES and rewriting is not None:
        return replace(
            result,
            certificate=positive_certificate(
                query, views, rewriting, extra_claims
            ),
        )
    if result.verdict is Verdict.NO:
        # the automata route refutes containment without an instance
        # pair; materialize one from a failing canonical test (Lemma 5
        # guarantees it exists — the search is budgeted regardless)
        test = find_failing_test(query, views, approx_depth, view_depth)
        if test is not None:
            return replace(
                result,
                counterexample=test,
                certificate=negative_certificate(
                    query, views, test, extra_claims
                ),
            )
    return result


def decide_monotonic_determinacy(
    query: QueryLike,
    views: ViewSet,
    approx_depth: int = 4,
    view_depth: int = 3,
    max_tests: Optional[int] = None,
    certify: bool = True,
    optimize: bool = False,
) -> DeterminacyResult:
    """Decide (or boundedly check) monotonic determinacy of ``query``.

    Exact for CQ/UCQ queries over constant-free views — and, via the
    semantic boundedness analysis, for Datalog queries whose recursion
    is vacuous; otherwise the bounded Lemma-5 procedure.  With
    ``certify`` (default) the result carries a machine-checkable
    certificate of its verdict.

    Datalog queries are statically analyzed first: a program with
    error-grade diagnostics (inconsistent arities, undefined goal, ...)
    raises :class:`~repro.analysis.ProgramAnalysisError` instead of
    feeding garbage to a 2ExpTime-grade procedure.  With ``optimize``
    a genuinely recursive Datalog query additionally runs through the
    certified optimizer (:mod:`repro.analysis.optimize`) before the
    canonical-test procedure; when ``certify`` is also set the applied
    transformations ship ``program_equivalence`` claims alongside the
    verdict's own certificate.
    """
    extra_claims: list[dict] = []
    reduced = ""
    if isinstance(query, DatalogQuery):
        from repro.analysis import ProgramAnalysisError, analyze_query

        report = analyze_query(query, views=views, semantic=True)
        if report.has_errors():
            raise ProgramAnalysisError(
                report, "decide_monotonic_determinacy"
            )
        assert report.semantics is not None
        boundedness = report.semantics.boundedness
        if boundedness.bounded and boundedness.ucq is not None:
            # semantic fast path: the recursion is vacuous (or absent),
            # so the query equals a UCQ and the exact route applies
            if certify:
                from repro.certify.emit import claim_bounded_unfolding

                extra_claims.append(claim_bounded_unfolding(
                    query.program,
                    query.goal,
                    boundedness.vacuous_rules,
                    boundedness.ucq,
                ))
            reduced = " after bounded→UCQ reduction"
            query = boundedness.ucq
    if optimize and isinstance(query, DatalogQuery):
        from repro.analysis.optimize import optimize_program

        opt = optimize_program(
            query.program, query.goal, certify=certify
        )
        if opt.changed:
            if certify and opt.certificate is not None:
                extra_claims.extend(opt.certificate["claims"])
            query = DatalogQuery(opt.optimized, query.goal, query.name)
            reduced += " after certified optimization"
    if isinstance(query, (ConjunctiveQuery, UCQ)):
        result = _decide_exact(
            query, views, certify, extra_claims, approx_depth, view_depth
        )
        if result is not None:
            if reduced:
                result = replace(result, method=result.method + reduced)
            return result
    result = check_tests(
        query,
        views,
        approx_depth,
        view_depth,
        max_tests,
        certify=certify,
        extra_claims=extra_claims,
    )
    if reduced:
        result = replace(result, method=result.method + reduced)
    return result
