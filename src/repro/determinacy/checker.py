"""The monotonic-determinacy checker.

:func:`decide_monotonic_determinacy` dispatches by query fragment:

* CQ / UCQ query — *exact* decision via the forward–backward candidate
  and automata containment (Prop. 8 / Thm 5);
* recursive query — the canonical-test procedure of Lemma 5, bounded by
  an expansion-depth budget.  ``NO`` answers are always exact (a failing
  test is a genuine counterexample); ``UNKNOWN`` reports the budget.

The bounded branch is the honest rendering of the paper's landscape:
full decidability only holds for the restricted fragments of Thms 3–5,
and is *impossible* in general (Thm 6, Prop. 9).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.containment import Verdict
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.ucq import UCQ
from repro.views.view import ViewSet
from repro.determinacy.cq_query import decide_cq_ucq
from repro.determinacy.result import DeterminacyResult
from repro.determinacy.tests import canonical_tests, test_succeeds

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]


def _test_space_is_finite(query: QueryLike, views: ViewSet) -> bool:
    """Whether the canonical-test space is finite.

    True when the query is a CQ/UCQ (finitely many approximations) and
    every view definition is a CQ/UCQ (finitely many inversion choices
    per fact).  In that case exhausting the tests *decides* monotonic
    determinacy (Lemma 5), so the checker can answer YES.
    """
    if not isinstance(query, (ConjunctiveQuery, UCQ)):
        return False
    return views.fragments() <= {"CQ", "UCQ"}


def check_tests(
    query: QueryLike,
    views: ViewSet,
    approx_depth: int = 4,
    view_depth: int = 3,
    max_tests: Optional[int] = None,
) -> DeterminacyResult:
    """Run the canonical-test procedure up to the given budgets.

    When the test space is finite (CQ/UCQ query and views) and no budget
    truncated the enumeration, a clean pass is an exact YES.
    """
    executed = 0
    for test in canonical_tests(query, views, approx_depth, view_depth):
        executed += 1
        if not test_succeeds(test, query):
            return DeterminacyResult(
                Verdict.NO,
                "canonical tests (Lemma 5)",
                test,
                f"failing test found after {executed} tests",
                {"tests_executed": executed},
            )
        if max_tests is not None and executed >= max_tests:
            return DeterminacyResult(
                Verdict.UNKNOWN,
                "canonical tests (Lemma 5)",
                None,
                f"test budget {max_tests} exhausted",
                {"tests_executed": executed},
            )
    if _test_space_is_finite(query, views):
        return DeterminacyResult(
            Verdict.YES,
            "canonical tests (Lemma 5, finite test space)",
            None,
            f"all {executed} tests succeed and the test space is finite",
            {"tests_executed": executed},
        )
    return DeterminacyResult(
        Verdict.UNKNOWN,
        "canonical tests (Lemma 5)",
        None,
        (
            f"all {executed} tests up to approximation depth "
            f"{approx_depth} / view depth {view_depth} succeed"
        ),
        {"tests_executed": executed},
    )


def decide_monotonic_determinacy(
    query: QueryLike,
    views: ViewSet,
    approx_depth: int = 4,
    view_depth: int = 3,
    max_tests: Optional[int] = None,
) -> DeterminacyResult:
    """Decide (or boundedly check) monotonic determinacy of ``query``.

    Exact for CQ/UCQ queries over constant-free views; otherwise the
    bounded Lemma-5 procedure.

    Datalog queries are statically analyzed first: a program with
    error-grade diagnostics (inconsistent arities, undefined goal, ...)
    raises :class:`~repro.analysis.ProgramAnalysisError` instead of
    feeding garbage to a 2ExpTime-grade procedure.
    """
    if isinstance(query, DatalogQuery):
        from repro.analysis import ProgramAnalysisError, analyze_query

        report = analyze_query(query, views=views)
        if report.has_errors():
            raise ProgramAnalysisError(
                report, "decide_monotonic_determinacy"
            )
    if isinstance(query, (ConjunctiveQuery, UCQ)):
        try:
            result, _rewriting = decide_cq_ucq(query, views)
            return result
        except ValueError:
            pass  # unsupported shape (constants, ...): fall back
    return check_tests(query, views, approx_depth, view_depth, max_tests)
