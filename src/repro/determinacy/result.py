"""Result types for determinacy checking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.containment import Verdict
from repro.core.cq import ConjunctiveQuery
from repro.core.instance import Instance


@dataclass(frozen=True)
class CanonicalTest:
    """One canonical test ``(Q_i, D')`` for monotonic determinacy (§5).

    ``approximation`` is the CQ approximation of the query,
    ``view_image`` its view image ``V(Q_i)``, and ``test_instance`` the
    instance ``D'`` obtained by applying inverses of view definitions.
    """

    approximation: ConjunctiveQuery
    view_image: Instance
    test_instance: Instance

    def describe(self) -> str:
        return (
            f"approximation: {self.approximation!r}\n"
            f"view image:\n{self.view_image.pretty()}\n"
            f"test instance D':\n{self.test_instance.pretty()}"
        )


@dataclass(frozen=True)
class DeterminacyResult:
    """Outcome of a monotonic-determinacy check.

    * ``YES`` — monotonically determined (exact methods only);
    * ``NO`` — a failing canonical test was found (always exact, by
      Lemma 5 failing tests are genuine counterexamples);
    * ``UNKNOWN`` — the bounded procedure exhausted its budget.

    ``certificate`` (when present) is a machine-checkable account of the
    verdict in the :mod:`repro.certify` claim vocabulary: a rewriting
    equivalence for YES, a counterexample instance pair for NO.  It is
    validated by the *independent* :func:`repro.certify.check_certificate`
    — no engine fast paths — so a verdict can be trusted without
    trusting the decision procedure that produced it.
    """

    verdict: Verdict
    method: str
    counterexample: Optional[CanonicalTest] = None
    detail: str = ""
    stats: dict = field(default_factory=dict)
    certificate: Optional[dict] = None

    def __bool__(self) -> bool:
        return self.verdict is Verdict.YES

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeterminacyResult({self.verdict.value}, method={self.method},"
            f" detail={self.detail!r})"
        )
