"""Certificate emission for determinacy verdicts.

Bridges the decision procedures to :mod:`repro.certify`:

* a YES verdict ships the rewriting with an equivalence claim — exact
  (``monotone_rewriting``, re-checked on canonical databases) when the
  query and every view definition are CQ/UCQ, sampled
  (``rewriting_sample``) otherwise;
* a NO verdict ships a counterexample pair ``(I₁, I₂, t)`` with
  ``t ∈ Q(I₁)``, ``t ∉ Q(I₂)`` and ``V(I₁) ⊆ V(I₂)`` — extracted from a
  failing canonical test (Lemma 5: ``I₁`` is the approximation's
  canonical database, ``I₂`` the inverse-applied test instance);
* a YES obtained by exhausting a *finite* test space ships one
  membership claim per canonical test.

Everything emitted here is validated downstream by the independent
:func:`repro.certify.check_certificate`, which never touches the
engine's fast paths.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

from repro.certify.emit import (
    certificate,
    claim_membership,
    claim_monotone_rewriting,
    claim_not_determined,
    claim_rewriting_sample,
)
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.ucq import UCQ
from repro.views.view import ViewSet
from repro.determinacy.result import CanonicalTest

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]

#: budget for the failing-test search backing negative certificates
NEGATIVE_SEARCH_LIMIT = 2048


def _exactly_checkable(query: QueryLike, views: ViewSet) -> bool:
    """Whether ``monotone_rewriting``'s exact replay applies."""
    if not isinstance(query, (ConjunctiveQuery, UCQ)):
        return False
    return views.fragments() <= {"CQ", "UCQ"}


def rewriting_claims(
    query: QueryLike,
    views: ViewSet,
    rewriting: QueryLike,
    trials: int = 25,
    seed: int = 0,
) -> list[dict]:
    """Claims certifying ``rewriting ∘ V ≡ Q`` — exact when possible,
    sampled otherwise."""
    if _exactly_checkable(query, views):
        return [claim_monotone_rewriting(query, views, rewriting)]
    return [
        claim_rewriting_sample(
            query, views, rewriting, trials=trials, seed=seed
        )
    ]


def positive_certificate(
    query: QueryLike,
    views: ViewSet,
    rewriting: QueryLike,
    extra_claims: Sequence[dict] = (),
    meta: Optional[dict] = None,
) -> dict:
    """Certificate for a YES verdict carrying its rewriting."""
    tag: dict[str, Any] = {"verdict": "yes"}
    if not _exactly_checkable(query, views):
        tag["note"] = (
            "equivalence is sampled; exact replay needs a CQ/UCQ query "
            "and CQ/UCQ views"
        )
    if meta:
        tag.update(meta)
    return certificate(
        list(extra_claims) + rewriting_claims(query, views, rewriting),
        meta=tag,
    )


def negative_certificate(
    query: QueryLike,
    views: ViewSet,
    test: CanonicalTest,
    extra_claims: Sequence[dict] = (),
    meta: Optional[dict] = None,
) -> dict:
    """Certificate for a NO verdict from a failing canonical test.

    Lemma 5 reading: with ``I₁`` the approximation's canonical database
    and ``I₂`` the test instance, the failing test *is* the instance
    pair witnessing non-determinacy.
    """
    claim = claim_not_determined(
        query,
        views,
        test.approximation.canonical_database(),
        test.test_instance,
        test.approximation.frozen_head(),
    )
    tag: dict[str, Any] = {"verdict": "no"}
    if meta:
        tag.update(meta)
    return certificate(list(extra_claims) + [claim], meta=tag)


def find_failing_test(
    query: QueryLike,
    views: ViewSet,
    approx_depth: int = 4,
    view_depth: int = 3,
    limit: int = NEGATIVE_SEARCH_LIMIT,
) -> Optional[CanonicalTest]:
    """A failing canonical test, searched within a budget.

    Used to materialize the counterexample pair when a NO verdict came
    out of the automata pipeline (which refutes containment without
    constructing an instance pair).  For CQ/UCQ queries and views the
    test space is finite and complete, so a NO always has one.
    """
    from repro.determinacy.tests import canonical_tests, test_succeeds

    for executed, test in enumerate(
        canonical_tests(query, views, approx_depth, view_depth)
    ):
        if not test_succeeds(test, query):
            return test
        if executed + 1 >= limit:
            return None
    return None


def exhaustive_tests_certificate(
    query: QueryLike,
    views: ViewSet,
    tests: Iterable[CanonicalTest],
    extra_claims: Sequence[dict] = (),
    meta: Optional[dict] = None,
) -> dict:
    """Certificate for a YES by finite test-space exhaustion (Lemma 5):
    one membership claim per canonical test."""
    claims = list(extra_claims)
    for test in tests:
        claims.append(
            claim_membership(
                query,
                test.test_instance,
                test.approximation.frozen_head(),
            )
        )
    tag: dict[str, Any] = {
        "verdict": "yes",
        "note": (
            "every canonical test succeeds and the test space is "
            "finite (Lemma 5)"
        ),
    }
    if meta:
        tag.update(meta)
    return certificate(claims, meta=tag)
