"""Deciding monotonic determinacy (§5, §6)."""

from repro.determinacy.result import CanonicalTest, DeterminacyResult
from repro.determinacy.tests import (
    canonical_tests,
    test_succeeds,
    tests_for_approximation,
    view_definition_expansions,
)
from repro.determinacy.checker import (
    check_tests,
    decide_monotonic_determinacy,
)
from repro.determinacy.cq_query import (
    decide_cq_ucq,
    forward_backward_candidate,
    unfold_candidate,
)
from repro.determinacy.automata_checker import decide_fgdl, lemma3_bound
from repro.determinacy.reductions import (
    containment_to_determinacy,
    equivalence_to_determinacy,
)
from repro.determinacy.homomorphic import (
    homomorphic_violation,
    monotonic_violation,
)
from repro.determinacy.minimize import (
    minimize_failing_test,
    minimize_violation_pair,
    violation_pair_from_test,
)

__all__ = [
    "CanonicalTest", "DeterminacyResult", "canonical_tests",
    "test_succeeds", "tests_for_approximation",
    "view_definition_expansions", "check_tests",
    "decide_monotonic_determinacy", "decide_cq_ucq",
    "forward_backward_candidate", "unfold_candidate", "decide_fgdl",
    "lemma3_bound", "containment_to_determinacy",
    "equivalence_to_determinacy", "homomorphic_violation",
    "monotonic_violation", "minimize_failing_test",
    "minimize_violation_pair", "violation_pair_from_test",
]
