"""Exact monotonic-determinacy decision for CQ/UCQ queries (Prop. 8, Thm 5).

For a CQ (or UCQ) query over arbitrary views, monotonic determinacy is
equivalent to the *canonical candidate* being a rewriting:

* ``Q' = ⋁_i V(Q_i)`` — apply the views to each disjunct's canonical
  database and read the result back as a CQ over the view schema;
* ``Q'' = unfold the view definitions into Q'``;
* ``Q`` is monotonically determined iff ``Q'' ⊑ Q`` (the converse
  containment always holds).

``Q'' ⊑ Q`` is a Datalog-in-UCQ containment, decided exactly by the
automata pipeline (2ExpTime worst case, Thm 5).  When a disjunct's answer
tuple is invisible in its view image the candidate is unsafe and ``Q`` is
*not* monotonically determined — the renaming counterexample is recorded
in the result detail.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.atoms import Atom
from repro.core.containment import Verdict
from repro.core.cq import ConjunctiveQuery, cq_from_instance
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.ucq import UCQ, as_ucq
from repro.views.view import ViewSet
from repro.determinacy.result import CanonicalTest, DeterminacyResult


def forward_backward_candidate(
    query: Union[ConjunctiveQuery, UCQ], views: ViewSet
) -> tuple[Optional[UCQ], str]:
    """The canonical UCQ rewriting candidate ``⋁_i V(Q_i)`` (Prop. 8).

    Returns ``(candidate, problem)``: the candidate is None when some
    disjunct's answer tuple is not exposed by the views (the "unsafe"
    case, which already refutes monotonic determinacy for that query).
    """
    disjuncts = []
    for i, disjunct in enumerate(as_ucq(query).disjuncts):
        canon = disjunct.canonical_database()
        image = views.image(canon)
        answer = disjunct.frozen_head()
        if not set(answer) <= image.active_domain():
            missing = [a for a in answer if a not in image.active_domain()]
            return None, (
                f"answer element(s) {missing} of disjunct {i} invisible in "
                "its view image: renaming them yields instances with equal "
                "view images but different outputs"
            )
        disjuncts.append(
            cq_from_instance(image, answer, name=f"{disjunct.name}′")
        )
    return UCQ(disjuncts, f"{as_ucq(query).name}′"), ""


def unfold_candidate(
    candidate: UCQ, views: ViewSet, goal: str = "Goal″"
) -> DatalogQuery:
    """``Q''``: the candidate with view definitions unfolded (as Datalog)."""
    program, _ = views.combined_program()
    rules = list(program.rules)
    for disjunct in candidate.disjuncts:
        rules.append(
            Rule(Atom(goal, disjunct.head_vars), disjunct.atoms)
        )
    return DatalogQuery(DatalogProgram(tuple(rules)), goal, "Q″")


def decide_cq_ucq(
    query: Union[ConjunctiveQuery, UCQ],
    views: ViewSet,
) -> tuple[DeterminacyResult, Optional[UCQ]]:
    """Exact decision + the UCQ rewriting when determined.

    Requires constant-free view definitions (the automata path); raises
    ``ValueError`` otherwise — callers fall back to the bounded checker.
    """
    candidate, problem = forward_backward_candidate(query, views)
    if candidate is None:
        return (
            DeterminacyResult(
                Verdict.NO, "forward-backward (Prop. 8)", None, problem
            ),
            None,
        )
    unfolded = unfold_candidate(candidate, views)
    from repro.automata.containment import datalog_in_ucq_exact

    containment = datalog_in_ucq_exact(unfolded, as_ucq(query))
    if containment.verdict is Verdict.YES:
        return (
            DeterminacyResult(
                Verdict.YES,
                "forward-backward + automata containment (Thm 5)",
                None,
                "Q'' ⊑ Q verified; candidate is a UCQ rewriting",
            ),
            candidate,
        )
    test = _containment_counterexample_to_test(
        containment.counterexample, query, views
    )
    return (
        DeterminacyResult(
            Verdict.NO,
            "forward-backward + automata containment (Thm 5)",
            test,
            "an unfolding of the candidate escapes Q",
        ),
        None,
    )


def _containment_counterexample_to_test(
    counterexample: Optional[ConjunctiveQuery],
    query: Union[ConjunctiveQuery, UCQ],
    views: ViewSet,
) -> Optional[CanonicalTest]:
    """Package the escaping expansion as a (failing) canonical test."""
    if counterexample is None:
        return None
    witness = counterexample.canonical_database()
    base = witness.restrict(views.base_predicates())
    image = views.image(base)
    approx = next(iter(as_ucq(query).disjuncts))
    return CanonicalTest(approx, image, base)
