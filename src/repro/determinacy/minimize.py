"""Counterexample minimization.

Failing canonical tests and monotonic-determinacy violation pairs are
often much larger than necessary (they inherit the size of the
approximation that produced them).  Greedy fact-removal minimization
makes counterexamples readable — the same compression idea as the
finite-variants argument of the appendix (Prop. 11): a violation always
restricts to a finite (here: inclusion-minimal) sub-violation.

Because the query is monotone, a failing ``D'`` stays failing under any
removal; what must be preserved is *testhood* — the view image of the
shrunk ``D'`` must still contain ``V(Q_i)``, so the pair remains a
genuine violation of monotonic determinacy.
"""

from __future__ import annotations

from typing import Union

from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.core.ucq import UCQ
from repro.views.view import ViewSet
from repro.determinacy.result import CanonicalTest
from repro.determinacy.tests import test_succeeds

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]


def minimize_failing_test(
    test: CanonicalTest, query: QueryLike, views: ViewSet
) -> CanonicalTest:
    """Shrink a failing test's ``D'`` to an inclusion-minimal instance
    that is still a test (its image covers ``V(Q_i)``).

    ``Q`` keeps failing on every sub-instance by monotonicity, so the
    only constraint is the image inclusion.
    """
    if test_succeeds(test, query):
        raise ValueError("can only minimize failing tests")
    current = test.test_instance.copy()
    for fact in sorted(test.test_instance.facts(), key=repr):
        current.discard(fact)
        if not test.view_image <= views.image(current):
            current.add(fact)
    return CanonicalTest(test.approximation, test.view_image, current)


def minimize_violation_pair(
    query: QueryLike,
    views: ViewSet,
    left: Instance,
    right: Instance,
) -> tuple[Instance, Instance]:
    """Shrink a monotonic-determinacy violation pair.

    Requires ``V(left) ⊆ V(right)`` and ``Q(left) ⊄ Q(right)``; returns
    a pair with the same properties, inclusion-minimal on both sides
    (left first, then right under the image-inclusion constraint).
    """

    def violated(a: Instance, b: Instance) -> bool:
        if not views.image(a) <= views.image(b):
            return False
        return bool(query.evaluate(a) - query.evaluate(b))

    if not violated(left, right):
        raise ValueError("not a monotonic-determinacy violation pair")
    left = left.copy()
    right = right.copy()
    for fact in sorted(list(left.facts()), key=repr):
        left.discard(fact)
        if not violated(left, right):
            left.add(fact)
    for fact in sorted(list(right.facts()), key=repr):
        right.discard(fact)
        if not violated(left, right):
            right.add(fact)
    return left, right


def violation_pair_from_test(
    test: CanonicalTest,
) -> tuple[Instance, Instance]:
    """The violation pair a failing test witnesses (Lemma 5 direction).

    ``left`` is the approximation's canonical database (where ``Q(ā)``
    holds), ``right`` is ``D'`` (where it fails); ``V(left) ⊆ V(right)``
    by construction of the test.
    """
    return test.approximation.canonical_database(), test.test_instance
