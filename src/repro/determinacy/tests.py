"""Canonical tests for monotonic determinacy (Lemma 5, §5).

A test ``(Q_i, D')`` pairs a CQ approximation of the query with an
instance obtained from its view image by *applying inverses of the view
definitions*: each view fact ``V(c̄)`` is replaced by the atoms of a
chosen CQ approximation of ``Q_V``, with the head instantiated at ``c̄``
and the existential variables replaced by fresh nulls.

``Q`` is monotonically determined over ``V`` iff **every** test succeeds
(``D' ⊨ Q(ā)``).  The test space is infinite for recursive queries or
views; the generators here enumerate it by expansion depth, which makes
the checker of :mod:`repro.determinacy.checker` a complete refuter and a
bounded verifier.
"""

from __future__ import annotations

from itertools import product as iproduct
from typing import Iterator, Optional, Union

from repro.core.approximation import approximations
from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.instance import Instance
from repro.core.terms import is_variable
from repro.core.ucq import UCQ
from repro.util.fresh import FreshNames
from repro.views.view import View, ViewSet
from repro.determinacy.result import CanonicalTest

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]


def query_approximations(
    query: QueryLike, max_depth: int
) -> Iterator[ConjunctiveQuery]:
    """CQ approximations of a query of any supported kind."""
    if isinstance(query, ConjunctiveQuery):
        yield query
    elif isinstance(query, UCQ):
        yield from query.disjuncts
    else:
        yield from approximations(query, max_depth)


def view_definition_expansions(
    view: View, max_depth: int
) -> list[ConjunctiveQuery]:
    """CQ approximations of one view's definition."""
    definition = view.definition
    if isinstance(definition, ConjunctiveQuery):
        return [definition]
    if isinstance(definition, UCQ):
        return list(definition.disjuncts)
    return list(approximations(definition, max_depth))


def _instantiate(
    expansion: ConjunctiveQuery, row: tuple, fresh: FreshNames
) -> list[Atom]:
    """Fire ``∀x̄ V(x̄) → Q'(x̄)``: head at ``row``, existentials fresh."""
    mapping: dict = dict(zip(expansion.head_vars, row))
    for var in expansion.existential_variables():
        mapping[var] = f"∃{fresh()}"
    atoms = []
    for atom in expansion.atoms:
        args = tuple(
            mapping[t] if is_variable(t) else t for t in atom.args
        )
        atoms.append(Atom(atom.pred, args))
    return atoms


def tests_for_approximation(
    approximation: ConjunctiveQuery,
    views: ViewSet,
    view_depth: int = 3,
    max_tests: Optional[int] = None,
) -> Iterator[CanonicalTest]:
    """All canonical tests built on one approximation.

    One test per combination of view-definition expansion choices, one
    choice per view fact of the image.  ``max_tests`` caps the stream.
    """
    image = views.image(approximation.canonical_database())
    facts = sorted(image.facts(), key=repr)
    expansions = {
        view.name: view_definition_expansions(view, view_depth)
        for view in views
    }
    option_lists = []
    for fact in facts:
        options = expansions[fact.pred]
        if not options:
            options = []  # view definition has no expansions: fact
            # cannot be inverted; treat as an empty choice set, which
            # kills every combination (no test exists through this fact).
        option_lists.append(options)

    count = 0
    if any(not opts for opts in option_lists):
        return
    for combo in iproduct(*option_lists):
        fresh = FreshNames("null")
        test_instance = Instance()
        for fact, expansion in zip(facts, combo):
            for atom in _instantiate(expansion, fact.args, fresh):
                test_instance.add(atom)
        yield CanonicalTest(approximation, image, test_instance)
        count += 1
        if max_tests is not None and count >= max_tests:
            return


def test_succeeds(test: CanonicalTest, query: QueryLike) -> bool:
    """Whether ``D' ⊨ Q(ā)`` for the approximation's frozen answer."""
    answer = test.approximation.frozen_head()
    instance = test.test_instance
    if isinstance(query, ConjunctiveQuery):
        return query.holds(instance, answer)
    if isinstance(query, UCQ):
        return query.holds(instance, answer)
    return query.holds(instance, answer)


def canonical_tests(
    query: QueryLike,
    views: ViewSet,
    approx_depth: int = 4,
    view_depth: int = 3,
    max_tests_per_approximation: Optional[int] = None,
) -> Iterator[CanonicalTest]:
    """Enumerate canonical tests by approximation depth."""
    for approximation in query_approximations(query, approx_depth):
        yield from tests_for_approximation(
            approximation, views, view_depth, max_tests_per_approximation
        )
