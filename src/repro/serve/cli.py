"""``repro serve`` — CLI front end for the determinacy service.

Two modes share one dispatcher (:class:`repro.serve.ServeService`):

* socket mode (default) binds a JSON-lines TCP server and runs until a
  client sends ``{"op": "shutdown"}`` or the process is interrupted;
* ``--once SCRIPT`` replays a scripted session from a JSON file —
  either a bare list of requests or ``{"requests": [...]}`` — printing
  one response per line and exiting non-zero if any request fails or
  any round's ``ivm_state`` certificate is rejected by the independent
  checker.  CI smokes the service this way.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from pathlib import Path
from typing import Any, Optional

from repro.core.backend import backend_names
from repro.serve.service import ReproServer, ServeService


def add_serve_parser(sub: Any) -> None:
    serve = sub.add_parser(
        "serve",
        help="long-lived incremental determinacy service (JSON lines)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (socket mode)"
    )
    serve.add_argument(
        "--port", type=int, default=8642,
        help="bind port (socket mode; 0 picks a free port)",
    )
    serve.add_argument(
        "--once", metavar="SCRIPT", default=None,
        help="replay a scripted session from a JSON file and exit",
    )
    serve.add_argument(
        "--certify", action="store_true",
        help="attach an independently checked ivm_state certificate "
        "verdict to every maintenance round",
    )
    serve.add_argument(
        "--optimize", action="store_true",
        help="run new sessions' programs through the certified optimizer",
    )
    serve.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="default evaluation backend for new sessions",
    )
    serve.add_argument(
        "--max-delta", type=int, default=None, metavar="N",
        help="reject updates whose statically predicted delta bound "
        "exceeds N (in-band error, never fatal)",
    )
    serve.add_argument(
        "--timeout", type=float, default=300.0,
        help="idle seconds before a connection is dropped and a "
        "session is reaped (socket mode)",
    )
    serve.set_defaults(func=cmd_serve)


def _service(args: argparse.Namespace) -> ServeService:
    return ServeService(
        optimize=bool(args.optimize),
        backend=args.backend,
        certify=bool(args.certify),
        max_delta=args.max_delta,
    )


def load_script(path: Path) -> list[dict[str, Any]]:
    data = json.loads(path.read_text("utf-8"))
    if isinstance(data, dict):
        data = data.get("requests")
    if not isinstance(data, list):
        raise ValueError(
            f"{path}: script must be a JSON list of requests or an "
            "object with a 'requests' list"
        )
    return data


def run_script(
    path: Path,
    *,
    optimize: bool = False,
    backend: Optional[str] = None,
    certify: bool = False,
    max_delta: Optional[int] = None,
) -> int:
    """Drive a service through a scripted session; 0 iff all ok."""
    requests = load_script(path)
    service = ServeService(
        optimize=optimize,
        backend=backend,
        certify=certify,
        max_delta=max_delta,
    )

    async def _drive() -> list[dict[str, Any]]:
        return [await service.handle(request) for request in requests]

    responses = asyncio.run(_drive())
    failures = 0
    for response in responses:
        print(json.dumps(response, sort_keys=True, default=repr))
        if not response.get("ok"):
            failures += 1
        verdict = response.get("certificate")
        if verdict is not None and not verdict.get("valid"):
            failures += 1
    if failures:
        print(f"serve --once: {failures} failing response(s)")
        return 1
    return 0


async def _serve_socket(args: argparse.Namespace) -> None:
    service = _service(args)
    server = ReproServer(
        service,
        host=args.host,
        port=args.port,
        request_timeout=args.timeout,
        session_timeout=args.timeout,
    )
    await server.start()
    host, port = server.address
    print(f"repro serve: listening on {host}:{port}", flush=True)
    try:
        await service.shutdown_requested.wait()
        print("repro serve: shutdown requested, draining", flush=True)
    finally:
        await server.stop()


def cmd_serve(args: argparse.Namespace) -> int:
    if args.once is not None:
        return run_script(
            Path(args.once),
            optimize=bool(args.optimize),
            backend=args.backend,
            certify=bool(args.certify),
            max_delta=args.max_delta,
        )
    try:
        asyncio.run(_serve_socket(args))
    except KeyboardInterrupt:
        print("repro serve: interrupted", flush=True)
    return 0
