"""The determinacy service: sessions, program cache, JSON-lines server.

Three layers, outermost first:

* :class:`ReproServer` — a stdlib ``asyncio`` TCP server speaking
  newline-delimited JSON.  Connections are independent; requests on one
  connection are handled in order, requests across connections
  interleave freely.  An idle connection is dropped after
  ``request_timeout`` seconds, idle sessions are reaped after
  ``session_timeout``, and the ``shutdown`` op drains in-flight
  maintenance before the sockets close.
* :class:`ServeService` — the transport-agnostic op dispatcher.  The
  ``--once`` scripted mode drives it directly, no socket involved, so
  the smoke test and the live server exercise identical code.
* :class:`Session` — one named :class:`repro.ivm.MaterializedView`
  plus its coalescing queue.  Concurrent ``insert``/``retract``/
  ``update`` requests against the same session are merged into a
  *single* maintenance round: every waiter receives the shared round
  report (with ``coalesced`` = batch size).  Retractions across a
  merged batch apply before insertions, matching
  :meth:`MaterializedView.apply`; concurrent conflicting updates to
  the same fact have no ordering guarantee (they raced).

Maintenance rounds run in a worker thread (``asyncio.to_thread``) so
the event loop keeps accepting — and therefore coalescing — requests
while a round is in flight.  Rounds are serialized process-wide by one
lock: the engine's ambient stats-collector stack is process-global, so
two concurrent ``apply`` calls from different threads would interleave
push/pop on it.

Compiled programs are cached across sessions in :class:`ProgramCache`,
keyed on content-addressed fingerprints: the hash of every source file
in the ``repro`` package (so an engine edit invalidates everything),
the hash of the program text, and the optimize flag.  A cache hit
skips both parsing and the certified syntactic optimizer.

When a session is created with ``certify`` (or the service default is
on), every maintenance round's response carries an ``ivm_state``
certificate verdict from the independent replay checker — the
service's running proof that incremental state equals the from-scratch
fixpoint.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from collections import OrderedDict
from typing import Any, Optional

from repro.core import parse_instance, parse_program
from repro.core import stats as _stats
from repro.core.atoms import Fact
from repro.core.backend import backend_names
from repro.core.datalog import DatalogProgram
from repro.core.instance import Instance
from repro.core.parser import ParseError
from repro.core.stats import EngineStats
from repro.ivm import MaterializedView

#: bumped when the request/response vocabulary changes incompatibly
PROTOCOL = 1

OPS = (
    "ping", "create", "insert", "retract", "update",
    "query", "stats", "close", "shutdown",
)


class ProtocolError(ValueError):
    """A malformed request — reported to the client, never fatal."""


# ---------------------------------------------------------------------------
# program cache
# ---------------------------------------------------------------------------
class ProgramCache:
    """LRU of compiled (and optionally optimized) programs.

    Keys are ``(code fingerprint, sha256(program text), optimize)``:
    content-addressed on both the engine sources and the program, so a
    stale entry is structurally impossible — any edit to either side
    changes the key.  Values keep the *source* program alongside the
    maintained one because certificates must claim the pre-optimizer
    program.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._code: Optional[str] = None
        self._entries: OrderedDict[
            tuple[str, str, bool], tuple[DatalogProgram, DatalogProgram]
        ] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def _code_fingerprint(self) -> str:
        if self._code is None:
            from repro.harness.cache import code_fingerprint

            self._code = code_fingerprint()
        return self._code

    def key(self, text: str, optimize: bool) -> tuple[str, str, bool]:
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return (self._code_fingerprint(), digest, bool(optimize))

    def fetch(
        self, text: str, optimize: bool
    ) -> tuple[DatalogProgram, DatalogProgram, bool]:
        """``(source, maintained, was_cached)`` for program ``text``."""
        key = self.key(text, optimize)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0], entry[1], True
        self.misses += 1
        source = parse_program(text)
        maintained = source
        if optimize:
            from repro.analysis.optimize import (
                OPTIMIZE_RULE_LIMIT,
                syntactic_fixpoint_program,
            )

            if len(source.rules) <= OPTIMIZE_RULE_LIMIT:
                with _stats.suspended():
                    maintained = syntactic_fixpoint_program(source)
        self._entries[key] = (source, maintained)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return source, maintained, False


# ---------------------------------------------------------------------------
# sessions
# ---------------------------------------------------------------------------
_PendingUpdate = tuple[
    "list[Fact]", "list[Fact]", "asyncio.Future[dict[str, Any]]"
]


class Session:
    """One client-visible materialization plus its coalescing queue."""

    def __init__(
        self, name: str, view: MaterializedView, *, certify: bool
    ) -> None:
        self.name = name
        self.view = view
        self.certify = certify
        self.stats = EngineStats()
        self.created = time.monotonic()
        self.last_used = time.monotonic()
        self.pending: list[_PendingUpdate] = []
        self.lock = asyncio.Lock()
        # the static maintainability report, cached for the session's
        # lifetime (the classification is instance-independent; only
        # the numeric delta bounds are re-derived per update)
        self.maintain = view.maintenance_plan()

    def touch(self) -> None:
        self.last_used = time.monotonic()


def _decode_facts(payload: Any, field: str) -> list[Fact]:
    """``[["E", [1, 2]], ...]`` → ground facts, or :class:`ProtocolError`."""
    if payload is None:
        return []
    if not isinstance(payload, list):
        raise ProtocolError(f"{field!r} must be a list of [pred, args] pairs")
    facts: list[Fact] = []
    for entry in payload:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not isinstance(entry[0], str)
            or not isinstance(entry[1], (list, tuple))
        ):
            raise ProtocolError(
                f"{field!r} entries must be [pred, [arg, ...]] pairs, "
                f"got {entry!r}"
            )
        pred, args = entry
        for arg in args:
            if isinstance(arg, (list, dict)):
                raise ProtocolError(
                    f"fact arguments must be scalars, got {arg!r}"
                )
        facts.append(Fact(pred, tuple(args)))
    return facts


def _require_str(request: dict[str, Any], field: str) -> str:
    value = request.get(field)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"request needs a non-empty string {field!r}")
    return value


# ---------------------------------------------------------------------------
# the op dispatcher
# ---------------------------------------------------------------------------
class ServeService:
    """Transport-agnostic request handler.

    Every op returns a JSON-ready dict with an ``ok`` flag; protocol
    and evaluation errors are reported in-band (``ok: false`` plus an
    ``error`` string) and never tear down the service.
    """

    def __init__(
        self,
        *,
        optimize: bool = False,
        backend: Optional[str] = None,
        certify: bool = False,
        session_limit: int = 64,
        cache: Optional[ProgramCache] = None,
        max_delta: Optional[int] = None,
    ) -> None:
        if backend is not None and backend not in backend_names():
            raise ValueError(f"unknown backend {backend!r}")
        if max_delta is not None and max_delta < 0:
            raise ValueError("max_delta must be non-negative")
        self.optimize = bool(optimize)
        self.backend = backend
        self.certify = bool(certify)
        #: analysis-driven admission: updates whose predicted delta
        #: bound exceeds this are rejected in-band (None: accept all)
        self.max_delta = max_delta
        self.session_limit = session_limit
        self.cache = cache if cache is not None else ProgramCache()
        self.sessions: dict[str, Session] = {}
        self.shutdown_requested = asyncio.Event()
        # one maintenance round at a time, process-wide: the engine's
        # ambient stats-collector stack is global, not per-thread
        self._maintenance = asyncio.Lock()

    # -- dispatch ------------------------------------------------------
    async def handle(self, request: Any) -> dict[str, Any]:
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        if op not in OPS:
            return {
                "ok": False,
                "error": f"unknown op {op!r} (one of: {', '.join(OPS)})",
            }
        handler = getattr(self, f"_op_{op}")
        try:
            result: dict[str, Any] = await handler(request)
            return result
        except (ProtocolError, ParseError, ValueError) as exc:
            return {"ok": False, "op": op, "error": str(exc)}

    def _session(self, request: dict[str, Any]) -> Session:
        name = _require_str(request, "session")
        session = self.sessions.get(name)
        if session is None:
            raise ProtocolError(f"no such session {name!r}")
        session.touch()
        return session

    # -- ops -----------------------------------------------------------
    async def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "protocol": PROTOCOL,
            "sessions": sorted(self.sessions),
        }

    async def _op_create(self, request: dict[str, Any]) -> dict[str, Any]:
        name = _require_str(request, "session")
        if name in self.sessions:
            raise ProtocolError(f"session {name!r} already exists")
        if len(self.sessions) >= self.session_limit:
            raise ProtocolError(
                f"session limit reached ({self.session_limit})"
            )
        text = _require_str(request, "program")
        optimize = bool(request.get("optimize", self.optimize))
        backend = request.get("backend", self.backend)
        if backend is not None and backend not in backend_names():
            raise ProtocolError(f"unknown backend {backend!r}")
        certify = bool(request.get("certify", self.certify))

        source, maintained, cached = self.cache.fetch(text, optimize)
        base = Instance()
        instance_text = request.get("instance")
        if instance_text is not None:
            if not isinstance(instance_text, str):
                raise ProtocolError("'instance' must be a program string")
            base = parse_instance(instance_text)
        base.update(_decode_facts(request.get("facts"), "facts"))

        # the initial fixpoint is a maintenance-sized computation: run
        # it off-loop, serialized with every other round
        async with self._maintenance:
            view = await asyncio.to_thread(
                MaterializedView,
                maintained,
                base,
                optimize=False,
                backend=backend,
            )
        # the cache already ran the optimizer; re-point the certificate
        # subject at the pre-optimizer program
        view.source_program = source
        view.optimize = optimize
        session = Session(name, view, certify=certify)
        self.sessions[name] = session
        return {
            "ok": True,
            "session": name,
            "cached_program": cached,
            "program_sha256": self.cache.key(text, optimize)[1],
            "optimize": optimize,
            "backend": backend or "auto",
            "certify": certify,
            "facts": len(view.state),
            "idb": sorted(view.program.idb_predicates()),
            "maintain": view.maintenance_strategies(),
        }

    async def _op_insert(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self._session(request)
        facts = _decode_facts(request.get("facts"), "facts")
        return await self._apply_update(session, facts, [])

    async def _op_retract(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self._session(request)
        facts = _decode_facts(request.get("facts"), "facts")
        return await self._apply_update(session, [], facts)

    async def _op_update(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self._session(request)
        inserts = _decode_facts(request.get("inserts"), "inserts")
        retracts = _decode_facts(request.get("retracts"), "retracts")
        return await self._apply_update(session, inserts, retracts)

    async def _op_query(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self._session(request)
        pred = _require_str(request, "pred")
        rows = sorted(session.view.query(pred), key=repr)
        return {
            "ok": True,
            "session": session.name,
            "pred": pred,
            "rows": [list(row) for row in rows],
        }

    async def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self._session(request)
        return {
            "ok": True,
            "session": session.name,
            "rounds": session.view.rounds,
            "facts": len(session.view.state),
            "engine": session.stats.to_dict(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "entries": len(self.cache),
            },
        }

    async def _op_close(self, request: dict[str, Any]) -> dict[str, Any]:
        session = self._session(request)
        del self.sessions[session.name]
        return {
            "ok": True,
            "session": session.name,
            "closed": True,
            "rounds": session.view.rounds,
        }

    async def _op_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        self.shutdown_requested.set()
        return {"ok": True, "shutting_down": True}

    # -- coalesced maintenance -----------------------------------------
    async def _apply_update(
        self, session: Session, inserts: list[Fact], retracts: list[Fact]
    ) -> dict[str, Any]:
        """Queue an update; the first waiter through the session lock
        drains the whole queue into one maintenance round and fans the
        shared report out to every waiter."""
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future[dict[str, Any]] = loop.create_future()
        session.pending.append((inserts, retracts, waiter))
        async with session.lock:
            if not waiter.done():
                batch, session.pending = session.pending, []
                merged_ins = [f for group in batch for f in group[0]]
                merged_del = [f for group in batch for f in group[1]]
                response = await self._run_round(
                    session, merged_ins, merged_del, len(batch)
                )
                for _, _, pending in batch:
                    if not pending.done():
                        pending.set_result(response)
        return waiter.result()

    async def _run_round(
        self,
        session: Session,
        inserts: list[Fact],
        retracts: list[Fact],
        coalesced: int,
    ) -> dict[str, Any]:
        try:
            async with self._maintenance:
                predicted: Optional[int] = None
                if session.maintain is not None:
                    predicted = await asyncio.to_thread(
                        session.view.predict_delta,
                        len(inserts) + len(retracts),
                    )
                if (
                    self.max_delta is not None
                    and predicted is not None
                    and predicted > self.max_delta
                ):
                    # admission control: the update is refused in-band
                    # (never fatal) before any maintenance work runs
                    return {
                        "ok": False,
                        "session": session.name,
                        "error": (
                            f"update rejected: predicted delta bound "
                            f"{predicted} exceeds max-delta "
                            f"{self.max_delta}"
                        ),
                        "rejected": True,
                        "predicted_delta": predicted,
                        "coalesced": coalesced,
                    }
                round_ = await asyncio.to_thread(
                    session.view.apply, inserts, retracts, session.stats
                )
            response: dict[str, Any] = {
                "ok": True,
                "session": session.name,
                "round": round_.as_dict(),
                "coalesced": coalesced,
            }
            if predicted is not None:
                response["predicted_delta"] = predicted
            if session.certify:
                response["certificate"] = await asyncio.to_thread(
                    self._certificate_verdict, session
                )
            return response
        except (ValueError, RuntimeError) as exc:
            return {
                "ok": False,
                "session": session.name,
                "error": f"{type(exc).__name__}: {exc}",
            }

    def _certificate_verdict(self, session: Session) -> dict[str, Any]:
        """Emit + independently check an ``ivm_state`` certificate."""
        from repro.certify import check_certificate

        cert = session.view.certificate(meta={"session": session.name})
        result = check_certificate(cert)
        verdict: dict[str, Any] = {
            "valid": result.valid,
            "claims": result.claims,
            "schema": cert["schema"],
        }
        if not result.valid:
            verdict["failures"] = list(result.failures)[:3]
        return verdict

    def reap_idle(self, timeout: float) -> list[str]:
        """Drop sessions idle longer than ``timeout`` seconds."""
        now = time.monotonic()
        stale = [
            name
            for name, session in self.sessions.items()
            if now - session.last_used > timeout and not session.pending
        ]
        for name in stale:
            del self.sessions[name]
        return stale


# ---------------------------------------------------------------------------
# the socket server
# ---------------------------------------------------------------------------
class ReproServer:
    """JSON-lines-over-TCP front end for a :class:`ServeService`."""

    def __init__(
        self,
        service: ServeService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        request_timeout: Optional[float] = 300.0,
        session_timeout: Optional[float] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.session_timeout = session_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._reaper: Optional[asyncio.Task[None]] = None

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        if self.session_timeout is not None:
            self._reaper = asyncio.create_task(self._reap_loop())

    async def stop(self) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # drain any in-flight maintenance round before reporting done
        async with self.service._maintenance:
            pass

    async def run(self) -> None:
        """Start, serve until a ``shutdown`` op, stop gracefully."""
        await self.start()
        try:
            await self.service.shutdown_requested.wait()
        finally:
            await self.stop()

    async def _reap_loop(self) -> None:
        assert self.session_timeout is not None
        interval = max(self.session_timeout / 4.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            self.service.reap_idle(self.session_timeout)

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self.service.shutdown_requested.is_set():
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), self.request_timeout
                    )
                except asyncio.TimeoutError:
                    break  # idle connection: drop it
                if not line:
                    break  # client hung up
                if not line.strip():
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    response: dict[str, Any] = {
                        "ok": False,
                        "error": f"invalid JSON: {exc}",
                    }
                else:
                    response = await self.service.handle(request)
                writer.write(
                    json.dumps(
                        response, sort_keys=True, default=repr
                    ).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
        except ConnectionResetError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass  # cleanup only: the handler ends either way
