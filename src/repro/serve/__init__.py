"""A long-lived determinacy service over maintained materializations.

``repro serve`` keeps :class:`repro.ivm.MaterializedView` objects warm
across requests: each *session* owns one view, updates are coalesced
into single maintenance rounds, and compiled-and-optimized programs are
cached across sessions keyed on content-addressed fingerprints.  The
protocol is JSON lines over a TCP socket (stdlib ``asyncio`` only);
``repro serve --once`` replays a scripted session from a JSON file
without opening a socket, which is how CI smokes the service.
"""

from repro.serve.service import ProgramCache, ReproServer, ServeService, Session

__all__ = ["ProgramCache", "ReproServer", "ServeService", "Session"]
