"""Tree automata and the forward/backward mappings (§3)."""

from repro.automata.nta import (
    NTA,
    Transition,
    emptiness_against,
    run_symbolic,
)
from repro.automata.forward import (
    approximations_automaton,
    fold_repeated_idb_args,
    required_width,
    standard_code_of_expansion,
    view_image_automaton_atomic,
)
from repro.automata.cq_automaton import CQMatchDTA, UCQMatchDTA
from repro.automata.containment import (
    datalog_in_cq_exact,
    datalog_in_ucq_exact,
)
from repro.automata.backward import backward_query, backward_query_mdl

__all__ = [
    "NTA", "Transition", "emptiness_against", "run_symbolic",
    "approximations_automaton", "required_width",
    "standard_code_of_expansion", "CQMatchDTA", "UCQMatchDTA",
    "datalog_in_cq_exact", "datalog_in_ucq_exact", "backward_query",
    "backward_query_mdl", "fold_repeated_idb_args",
    "view_image_automaton_atomic",
]
