"""Exact Datalog ⊑ UCQ containment via tree automata (behind Thm 5).

``Π ⊑ Q'`` for a Datalog query ``Π`` and a UCQ ``Q'`` holds iff every CQ
approximation of ``Π`` is contained in ``Q'``, i.e. iff ``Q'`` maps into
every canonical database captured by the forward automaton of Prop. 3.
We decide this exactly as the emptiness of the forward NTA against the
*complement* of the CQ-match automaton, and extract a counterexample
expansion from the emptiness witness.

Non-Boolean queries are reduced to Boolean ones by the standard marking
trick: answer variables are tagged with fresh unary predicates.
"""

from __future__ import annotations

from typing import Union

from repro.core.atoms import Atom
from repro.core.containment import ContainmentResult, Verdict
from repro.core.cq import ConjunctiveQuery, cq_from_instance
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.terms import Variable
from repro.core.ucq import UCQ, as_ucq
from repro.automata.cq_automaton import UCQMatchDTA
from repro.automata.forward import approximations_automaton, required_width
from repro.automata.nta import emptiness_against
from repro.td.codes import decode

_MARK = "Ans·"


def _booleanize_datalog(query: DatalogQuery) -> DatalogQuery:
    """Tag answer variables with fresh unary predicates ``Ans·i``."""
    if query.is_boolean():
        return query
    arity = query.arity
    head_vars = tuple(Variable(f"a{i}") for i in range(arity))
    marks = tuple(
        Atom(f"{_MARK}{i}", (v,)) for i, v in enumerate(head_vars)
    )
    goal_rule = Rule(
        Atom(f"{query.goal}·b", ()),
        (Atom(query.goal, head_vars),) + marks,
    )
    return DatalogQuery(
        DatalogProgram(query.program.rules + (goal_rule,)),
        f"{query.goal}·b",
        f"{query.name}·b",
    )


def _booleanize_ucq(ucq: UCQ) -> UCQ:
    if ucq.is_boolean():
        return ucq
    out = []
    for d in ucq.disjuncts:
        marks = tuple(
            Atom(f"{_MARK}{i}", (v,)) for i, v in enumerate(d.head_vars)
        )
        out.append(ConjunctiveQuery((), d.atoms + marks, d.name))
    return UCQ(out, ucq.name)


def datalog_in_ucq_exact(
    sub: DatalogQuery, sup: Union[ConjunctiveQuery, UCQ]
) -> ContainmentResult:
    """Exact decision of ``sub ⊑ sup`` with counterexample extraction.

    The worst-case cost matches the 2ExpTime upper bound of Thm 5; the
    reachable-pair product keeps practical inputs small.
    """
    sup_ucq = as_ucq(sup)
    if sub.arity != sup_ucq.arity:
        return ContainmentResult(Verdict.NO, None, "arity mismatch")
    sub_b = _booleanize_datalog(sub)
    sup_b = _booleanize_ucq(sup_ucq)
    width = required_width(sub_b)
    nta = approximations_automaton(sub_b, width)
    dta = UCQMatchDTA(sup_b, width)
    witness = emptiness_against(
        nta, dta, lambda _final, s: not dta.is_final(s)
    )
    if witness is None:
        return ContainmentResult(Verdict.YES, None, "automata emptiness")
    instance, _roots = decode(witness)
    counterexample = cq_from_instance(
        instance.drop([p for p in instance.predicates()
                       if p.startswith(_MARK)]),
        name="counterexample",
    )
    return ContainmentResult(
        Verdict.NO, counterexample, "witness expansion escapes the UCQ"
    )


def datalog_in_cq_exact(
    sub: DatalogQuery, sup: ConjunctiveQuery
) -> ContainmentResult:
    """Exact ``sub ⊑ sup`` for a single CQ upper bound."""
    return datalog_in_ucq_exact(sub, sup)
