"""Backward mapping: NTA → Datalog query ``Q_A`` (§3, Prop. 7).

Each automaton transition becomes a rule over predicates ``P_q`` of arity
``k`` (the code width): the rule asserts that the bag values can be
labelled ``q`` because some transition fires, with the equalities of the
edge maps compiled away by substitution and the node marks becoming body
atoms.  ``Adom`` rules make every active-domain element available for the
"dummy" positions.

``I ⊨ Q_A`` iff there is a jointly-annotated term for the automaton over
``I`` (Prop. 12); under the hypotheses of Prop. 7 this makes ``Q_A`` a
Datalog rewriting of the original query over the views.
"""

from __future__ import annotations

from typing import Optional

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.schema import Schema
from repro.core.terms import Variable
from repro.automata.nta import NTA, Transition

ADOM = "Adom·"


def _adom_rules(schema: Schema) -> list[Rule]:
    """``Adom(x) ← R(..., x, ...)`` for every relation and position."""
    rules = []
    for pred in sorted(schema.names()):
        arity = schema.arity(pred)
        args = tuple(Variable(f"d{i}") for i in range(arity))
        for i in range(arity):
            rules.append(Rule(Atom(ADOM, (args[i],)), (Atom(pred, args),)))
    return rules


def _state_pred(index: int) -> str:
    return f"P·q{index}"


def _transition_rule(
    t: Transition, k: int, state_index: dict
) -> Rule:
    """One backward rule, with edge-map equalities substituted away."""
    parent = [Variable(f"x{i}") for i in range(k)]
    body: list[Atom] = []

    # child atoms with equalities x_i = x^j_{s_j(i)} compiled in
    for j, (child_state, emap) in enumerate(zip(t.children, t.symbol[1])):
        child_vars = [Variable(f"x·{j}·{i}") for i in range(k)]
        for i, target_pos in emap:
            child_vars[target_pos] = parent[i]
        body.append(
            Atom(_state_pred(state_index[child_state]), tuple(child_vars))
        )

    # marks become input atoms
    marks, _ = t.symbol
    for pred, positions in sorted(marks, key=repr):
        body.append(Atom(pred, tuple(parent[p] for p in positions)))

    # Adom atoms keep the rule safe for dummy positions
    for var in parent:
        body.append(Atom(ADOM, (var,)))

    return Rule(
        Atom(_state_pred(state_index[t.target]), tuple(parent)), tuple(body)
    )


def backward_query_mdl(
    nta: NTA,
    input_schema: Schema,
    name: str = "Q_A_mdl",
    goal: Optional[str] = None,
) -> DatalogQuery:
    """The MDL variant of the backward mapping (Thm 1, last part).

    Requires a *frontier-one* automaton: every edge map identifies at
    most one position, and every state is of the form ``(pred, (p,))``
    or ``(pred, ())`` (as produced by the forward mapping of an MDL
    program).  Each rule then only passes the single frontier element
    to its children, so all new predicates are at most unary and the
    resulting program is Monadic Datalog.
    """
    for t in nta.transitions:
        if len(t.target[1]) > 1:
            raise ValueError(
                f"state {t.target} has a non-unary frontier; "
                "backward_query_mdl needs an MDL forward automaton"
            )
        for emap in t.symbol[1]:
            if len(emap) > 1:
                raise ValueError(
                    "edge maps must identify at most one position "
                    "(frontier-one codes)"
                )

    states = sorted(nta.states(), key=repr)
    state_index = {q: i for i, q in enumerate(states)}
    rules = _adom_rules(input_schema)

    for t in nta.transitions:
        bag = [Variable(f"x{i}") for i in range(nta.width)]
        body: list[Atom] = []
        for child_state, emap in zip(t.children, t.symbol[1]):
            child_frontier = child_state[1]
            if child_frontier:
                # the edge map must connect the shared position
                (pair,) = tuple(emap) if emap else ((None, None),)
                parent_pos = pair[0]
                if parent_pos is None:
                    raise ValueError(
                        "child with a frontier needs a connecting edge"
                    )
                body.append(
                    Atom(
                        _state_pred(state_index[child_state]),
                        (bag[parent_pos],),
                    )
                )
            else:
                body.append(
                    Atom(_state_pred(state_index[child_state]), ())
                )
        marks, _ = t.symbol
        used = set()
        for pred, positions in sorted(marks, key=repr):
            body.append(Atom(pred, tuple(bag[p] for p in positions)))
            used.update(positions)
        head_positions = t.target[1]
        head_args = tuple(bag[p] for p in head_positions)
        for p in head_positions:
            if p not in used:
                body.append(Atom(ADOM, (bag[p],)))
        rules.append(
            Rule(
                Atom(_state_pred(state_index[t.target]), head_args),
                tuple(body),
            )
        )

    goal_pred = goal or "Goal·A"
    frontier = Variable("x0")
    for q in sorted(nta.final, key=repr):
        body_atom = (
            Atom(_state_pred(state_index[q]), (frontier,))
            if q[1]
            else Atom(_state_pred(state_index[q]), ())
        )
        rules.append(Rule(Atom(goal_pred, ()), (body_atom,)))
    if not nta.final:
        rules.append(Rule(Atom(goal_pred, ()), (Atom("Never⊥", ()),)))
    return DatalogQuery(DatalogProgram(tuple(rules)), goal_pred, name)


def backward_query(
    nta: NTA,
    input_schema: Schema,
    name: str = "Q_A",
    goal: Optional[str] = None,
) -> DatalogQuery:
    """The Datalog query of the backward mapping.

    ``input_schema`` is the signature the rewriting runs over (the view
    schema in the determinacy application); it supplies the ``Adom``
    rules.  The goal is Boolean: ``Goal ← P_q(x̄)`` for accepting ``q``.
    """
    states = sorted(nta.states(), key=repr)
    state_index = {q: i for i, q in enumerate(states)}
    rules = _adom_rules(input_schema)
    for t in nta.transitions:
        rules.append(_transition_rule(t, nta.width, state_index))
    goal_pred = goal or "Goal·A"
    parent = tuple(Variable(f"x{i}") for i in range(nta.width))
    for q in sorted(nta.final, key=repr):
        rules.append(
            Rule(
                Atom(goal_pred, ()),
                (Atom(_state_pred(state_index[q]), parent),),
            )
        )
    if not nta.final:
        # empty language: goal defined over a never-populated relation
        rules.append(Rule(Atom(goal_pred, ()), (Atom("Never⊥", ()),)))
    return DatalogQuery(DatalogProgram(tuple(rules)), goal_pred, name)
