"""The CQ-match automaton: a symbolic deterministic bottom-up automaton
deciding, for a fixed Boolean CQ ``Q`` and any tree code ``T``, whether
``Q`` maps homomorphically into ``D(T)``.

This is the Courcelle-style dynamic programming over tree decompositions,
packaged as a :class:`repro.automata.nta.SymbolicDTA`:

* a *partial solution* is a pair ``(matched, bound)`` — a set of atoms
  of ``Q`` witnessed by marks in the subtree (each atom at exactly one
  node), and a partial map from the variables still occurring in
  unmatched atoms to current bag positions;
* the automaton state at a node is the set of all viable partial
  solutions;
* moving up an edge drops solutions whose bound element disappears (the
  element classes of a code are connected subtrees, so a dropped element
  never comes back);
* the state is final when the fully-matched solution is present.

Because the automaton is deterministic and symbolic, complementation is
just negating :meth:`is_final`, which is how Prop. 6's "¬Q" automaton is
realized for (unions of) conjunctive queries — enough for the exact
Datalog ⊑ UCQ containment behind Thm 5.

Atoms of ``Q`` are matched *bag-locally*: an atom is witnessed by a mark
of a single node.  This matches the decoding semantics of §3 exactly.
"""

from __future__ import annotations

from repro.core.cq import ConjunctiveQuery
from repro.core.terms import is_variable
from repro.core.ucq import UCQ, as_ucq
from repro.automata.nta import Symbol

Solution = tuple  # (matched: frozenset[int], bound: frozenset[(var, pos)])

_EMPTY: Solution = (frozenset(), frozenset())


class CQMatchDTA:
    """Symbolic DTA for Boolean CQ matching on codes of a fixed width."""

    def __init__(self, cq: ConjunctiveQuery, width: int) -> None:
        if not cq.is_boolean():
            raise ValueError("CQ-match automaton requires a Boolean CQ")
        for atom in cq.atoms:
            if any(not is_variable(t) for t in atom.args):
                raise ValueError(
                    "CQ-match automaton requires constant-free CQs"
                )
        self.cq = cq
        self.width = width
        self.atoms = list(cq.atoms)
        self.all_matched = frozenset(range(len(self.atoms)))
        self.vars = sorted(cq.variables(), key=lambda v: v.name)
        # var -> indices of atoms containing it
        self.atoms_of = {
            v: frozenset(
                i for i, a in enumerate(self.atoms) if v in a.variables()
            )
            for v in self.vars
        }

    # ------------------------------------------------------------------
    # solution bookkeeping
    # ------------------------------------------------------------------
    def _normalize(self, matched: frozenset, bound: dict) -> Solution:
        """Drop bindings of variables with no unmatched atoms."""
        live = {
            v: p
            for v, p in bound.items()
            if self.atoms_of[v] - matched
        }
        return (matched, frozenset(live.items()))

    def _prune(self, solutions: set) -> frozenset:
        """Deduplicate (and short-circuit once fully matched).

        NOTE: domination pruning by larger matched sets would be unsound
        here — merges require *disjoint* matched sets (see
        :meth:`_merge`), so a smaller matched set can be mergeable where
        a larger one is not.  Once the full solution appears, it alone
        suffices for acceptance, but other solutions must be kept for
        upward merges... except nothing above can un-match; we keep all.
        """
        return frozenset(solutions)

    # ------------------------------------------------------------------
    # node processing
    # ------------------------------------------------------------------
    def _extend_at_node(self, solutions: set, marks: frozenset) -> set:
        """Assign additional variables to bag positions and match marks.

        Implemented as a saturation: repeatedly, for each unmatched atom
        and each mark of the same predicate, try to unify (binding free
        variables, checking bound ones).  Additionally, keep unextended
        solutions (a variable may be bound higher up).  Variables only
        ever need to be bound when an atom is matched, and every atom is
        matched at exactly one node, so binding-on-match is complete.
        """
        marks_by_pred: dict[str, list[tuple]] = {}
        for pred, positions in marks:
            marks_by_pred.setdefault(pred, []).append(positions)

        frontier = set(solutions)
        seen = set(solutions)
        while frontier:
            matched, bound = frontier.pop()
            bound_map = dict(bound)
            for index in self.all_matched - matched:
                atom = self.atoms[index]
                for positions in marks_by_pred.get(atom.pred, ()):
                    new_bound = dict(bound_map)
                    ok = True
                    for term, pos in zip(atom.args, positions):
                        if term in new_bound:
                            if new_bound[term] != pos:
                                ok = False
                                break
                        else:
                            new_bound[term] = pos
                    if not ok:
                        continue
                    candidate = self._normalize(
                        matched | {index}, new_bound
                    )
                    if candidate not in seen:
                        seen.add(candidate)
                        frontier.add(candidate)
        return seen

    def _lift_through_edge(self, solution: Solution, emap) -> Solution | None:
        """Translate a child solution into parent bag coordinates."""
        to_parent = {j: i for i, j in emap}
        matched, bound = solution
        lifted = {}
        for var, pos in bound:
            parent_pos = to_parent.get(pos)
            if parent_pos is None:
                return None  # element vanishes with unmatched atoms left
            lifted[var] = parent_pos
        return (matched, frozenset(lifted.items()))

    def _merge(self, left: Solution, right: Solution) -> Solution | None:
        """Combine certificates from two subtrees.

        Matched sets must be DISJOINT: each query atom is witnessed at
        exactly one node of the run.  (Merging overlapping certificates
        would be unsound: the same atom matched in both children with
        different embeddings can leave no single homomorphism, yet the
        union would claim one.  Disjointness keeps every variable shared
        between the two certificates *bound* on both sides, so the
        consistency check below is complete.)
        """
        lm, lb = left
        rm, rb = right
        if lm & rm:
            return None
        merged = dict(lb)
        for var, pos in rb:
            if merged.get(var, pos) != pos:
                return None
            merged[var] = pos
        return self._normalize(lm | rm, merged)

    # ------------------------------------------------------------------
    # SymbolicDTA interface
    # ------------------------------------------------------------------
    def leaf(self, symbol: Symbol) -> frozenset:
        marks, _ = symbol
        return self._prune(self._extend_at_node({_EMPTY}, marks))

    def step(self, child_states: tuple, symbol: Symbol) -> frozenset:
        marks, edge_maps = symbol
        lifted_per_child = []
        for state, emap in zip(child_states, edge_maps):
            lifted = set()
            for solution in state:
                moved = self._lift_through_edge(solution, emap)
                if moved is not None:
                    lifted.add(moved)
            lifted.add(_EMPTY)
            lifted_per_child.append(lifted)

        combined = {_EMPTY}
        for child_solutions in lifted_per_child:
            next_combined = set()
            for acc in combined:
                for sol in child_solutions:
                    merged = self._merge(acc, sol)
                    if merged is not None:
                        next_combined.add(merged)
            combined = next_combined

        return self._prune(self._extend_at_node(combined, marks))

    def is_final(self, state: frozenset) -> bool:
        return any(matched == self.all_matched for matched, _ in state)


class UCQMatchDTA:
    """Product of CQ-match automata: final iff some disjunct matches."""

    def __init__(self, ucq: UCQ | ConjunctiveQuery, width: int) -> None:
        self.parts = [
            CQMatchDTA(d, width) for d in as_ucq(ucq).disjuncts
        ]
        self.width = width

    def leaf(self, symbol: Symbol) -> tuple:
        return tuple(p.leaf(symbol) for p in self.parts)

    def step(self, child_states: tuple, symbol: Symbol) -> tuple:
        return tuple(
            p.step(tuple(cs[i] for cs in child_states), symbol)
            for i, p in enumerate(self.parts)
        )

    def is_final(self, state: tuple) -> bool:
        return any(
            p.is_final(component)
            for p, component in zip(self.parts, state)
        )
