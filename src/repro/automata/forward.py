"""Forward mapping: Datalog query → NTA capturing its approximations
(Prop. 3).

States are pairs ``(P, n̄)``: an IDB predicate with an assignment of its
head arguments to bag positions.  A transition for a rule ``P(x̄) ← φ``
chooses an injective placement ``m`` of the rule's variables into the
``k`` bag positions; the symbol's marks are the EDB atoms of ``φ`` under
``m`` and each IDB body atom spawns a child state with the *same*
positions, connected by the identity edge map on those positions (the
"standard code" convention from the proof of Prop. 3).

:func:`standard_code_of_expansion` produces, for an expansion tree, the
standard code accepted by this automaton — together they witness the
"capture" property:

* every approximation has an accepted code (its standard code), and
* every accepted tree decodes to (an isomorphic copy of) the canonical
  database of an approximation.

Restriction: programs must be constant-free and IDB body atoms must not
repeat a variable (true of every construction in the paper).
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator, Optional

from repro.core.approximation import ExpansionNode
from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.terms import Variable, is_variable
from repro.automata.nta import NTA, Transition
from repro.td.codes import CodeNode, TreeCode


def _check_supported(query: DatalogQuery) -> None:
    idb = query.program.idb_predicates()
    for rule in query.program.rules:
        for atom in (rule.head, *rule.body):
            if any(not is_variable(t) for t in atom.args):
                raise ValueError(
                    "forward mapping requires constant-free rules, got "
                    f"{atom!r}"
                )
        if len(set(rule.head.args)) != len(rule.head.args):
            raise ValueError(
                f"forward mapping requires distinct head variables: {rule!r}"
            )
        for atom in rule.body:
            if atom.pred in idb and len(set(atom.args)) != len(atom.args):
                raise ValueError(
                    "forward mapping requires IDB body atoms without "
                    f"repeated variables, got {atom!r}"
                )


def _pattern_of(args: tuple) -> tuple[int, ...]:
    """The equality pattern of an argument tuple, e.g. (x,y,x) → (0,1,0)."""
    classes: dict = {}
    out = []
    for arg in args:
        if arg not in classes:
            classes[arg] = len(classes)
        out.append(classes[arg])
    return tuple(out)


def _fold_name(pred: str, pattern: tuple[int, ...]) -> str:
    if pattern == tuple(range(len(pattern))):
        return pred
    return f"{pred}[{','.join(map(str, pattern))}]"


def fold_repeated_idb_args(query: DatalogQuery) -> DatalogQuery:
    """Specialize IDB predicates per argument-equality pattern.

    ``V(z, z)`` in a body becomes ``V[0,0](z)`` whose rules are those of
    ``V`` with the head arguments unified.  The expansions (hence the
    captured language) are unchanged; the result satisfies the forward
    mapping's no-repeated-IDB-arguments requirement.
    """
    program = query.program
    idb = program.idb_predicates()
    identity = tuple(range(program.arity_of(query.goal)))
    needed: list[tuple[str, tuple[int, ...]]] = [(query.goal, identity)]
    done: set = set()
    new_rules: list[Rule] = []
    while needed:
        pred, pattern = needed.pop()
        if (pred, pattern) in done:
            continue
        done.add((pred, pattern))
        for rule in program.rules_for(pred):
            # unify head variables within each pattern class (union-find)
            parent: dict = {}

            def find(term):
                while parent.get(term, term) != term:
                    term = parent[term]
                return term

            for arg, cls in zip(rule.head.args, pattern):
                first = rule.head.args[pattern.index(cls)]
                ra, rf = find(arg), find(first)
                if ra != rf:
                    parent[ra] = rf

            def resolve(term):
                return find(term)

            class_order = sorted(set(pattern), key=pattern.index)
            head_args = tuple(
                resolve(rule.head.args[pattern.index(cls)])
                for cls in class_order
            )
            body = []
            for atom in rule.body:
                args = tuple(resolve(t) for t in atom.args)
                if atom.pred in idb:
                    sub_pattern = _pattern_of(args)
                    distinct: list = []
                    for arg in args:
                        if arg not in distinct:
                            distinct.append(arg)
                    body.append(
                        Atom(
                            _fold_name(atom.pred, sub_pattern),
                            tuple(distinct),
                        )
                    )
                    needed.append((atom.pred, sub_pattern))
                else:
                    body.append(Atom(atom.pred, args))
            new_rules.append(
                Rule(Atom(_fold_name(pred, pattern), head_args), tuple(body))
            )
    return DatalogQuery(
        DatalogProgram(tuple(new_rules)),
        _fold_name(query.goal, identity),
        query.name,
    )


def required_width(query: DatalogQuery) -> int:
    """The minimal code width: the maximal rule variable count."""
    return max(query.program.max_rule_variables(), 1)


def _placements(
    variables: list[Variable], width: int, pinned: dict
) -> Iterator[dict]:
    """Injective placements of ``variables`` into ``range(width)``.

    ``pinned`` pre-assigns some variables; remaining variables fill the
    free positions injectively.
    """
    free_vars = [v for v in variables if v not in pinned]
    used = set(pinned.values())
    free_positions = [p for p in range(width) if p not in used]
    if len(free_vars) > len(free_positions):
        return
    for perm in permutations(free_positions, len(free_vars)):
        out = dict(pinned)
        out.update(zip(free_vars, perm))
        yield out


def _rule_transitions(
    rule: Rule, idb: set[str], width: int
) -> Iterator[Transition]:
    variables = sorted(rule.variables(), key=lambda v: v.name)
    idb_atoms = [a for a in rule.body if a.pred in idb]
    edb_atoms = [a for a in rule.body if a.pred not in idb]
    for placement in _placements(variables, width, {}):
        marks = frozenset(
            (a.pred, tuple(placement[t] for t in a.args)) for a in edb_atoms
        )
        target = (
            rule.head.pred,
            tuple(placement[t] for t in rule.head.args),
        )
        children = []
        edge_maps = []
        for atom in idb_atoms:
            positions = tuple(placement[t] for t in atom.args)
            children.append((atom.pred, positions))
            edge_maps.append(frozenset((p, p) for p in positions))
        yield Transition(
            tuple(children), (marks, tuple(edge_maps)), target
        )


def approximations_automaton(
    query: DatalogQuery, width: Optional[int] = None
) -> NTA:
    """The NTA of Prop. 3, capturing the canonical databases of the CQ
    approximations of ``query``."""
    query = fold_repeated_idb_args(query)
    _check_supported(query)
    k = width if width is not None else required_width(query)
    if k < required_width(query):
        raise ValueError(
            f"width {k} below required {required_width(query)}"
        )
    idb = query.program.idb_predicates()
    transitions: list[Transition] = []
    for rule in query.program.rules:
        transitions.extend(_rule_transitions(rule, idb, k))
    final = {
        t.target
        for t in transitions
        if t.target[0] == query.goal
    }
    # also states reachable as targets from other rules for the goal
    return NTA(transitions, final, k).trim()


def view_image_automaton_atomic(nta, views) -> "NTA":
    """The view-image automaton for *atomic* views (Thm 1 pipeline).

    Atomic views (``V_R(x̄) ← R(x̄)``) act bag-locally on codes: the
    image of a decoded instance is obtained by renaming each mark to its
    view predicate and erasing marks of hidden relations.  The result
    captures ``{V(Q_i)}`` exactly, so Prop. 7 applies and
    :func:`repro.automata.backward.backward_query` yields a Datalog
    rewriting whenever the query is monotonically determined.

    Raises for non-atomic view definitions.
    """
    from repro.core.cq import ConjunctiveQuery

    renaming: dict[str, str] = {}
    for view in views:
        definition = view.definition
        if not (
            isinstance(definition, ConjunctiveQuery)
            and definition.size() == 1
            and not definition.existential_variables()
            and len(set(definition.head_vars)) == len(definition.head_vars)
            and definition.atoms[0].args == definition.head_vars
        ):
            raise ValueError(
                f"view {view.name} is not atomic (single identical-args "
                "atom); use the inverse-rules route instead"
            )
        renaming[definition.atoms[0].pred] = view.name

    def relabel(symbol):
        marks, emaps = symbol
        kept = frozenset(
            (renaming[pred], positions)
            for pred, positions in marks
            if pred in renaming
        )
        return (kept, emaps)

    return nta.map_symbols(relabel)


def standard_code_of_expansion(
    tree: ExpansionNode, width: int
) -> TreeCode:
    """The standard code of an expansion (proof of Prop. 3).

    One node per rule firing; shared terms keep the same bag position in
    parent and child; marks are exactly the firing's EDB atoms.
    """

    def build(node: ExpansionNode, pinned: dict) -> CodeNode:
        terms = node.bag()
        placement_iter = _placements(
            sorted(
                [t for t in terms if t not in pinned],
                key=repr,
            ),
            width,
            pinned,
        )
        placement = next(placement_iter, None)
        if placement is None:
            raise ValueError(
                f"width {width} too small for expansion bag {terms}"
            )
        marks = frozenset(
            (a.pred, tuple(placement[t] for t in a.args))
            for a in node.edb_atoms()
        )
        children = []
        for pos_index, child in zip(node.idb_positions, node.children):
            atom = node.rule.body[pos_index].substitute(node.mapping)
            child_pinned = {
                t: placement[t] for t in atom.args
            }
            emap = frozenset(
                (placement[t], placement[t]) for t in atom.args
            )
            children.append((emap, build(child, child_pinned)))
        return CodeNode(marks, tuple(children))

    return TreeCode(build(tree, {}), width)
