"""Jointly-annotated terms (appendix, Prop. 12).

A jointly-annotated term for an automaton ``A``, instance ``I`` and
k-tuple ``ā`` is an accepted code ``T`` plus an assignment ``b`` of
nodes to k-tuples of ``I``-elements respecting the edge-map equalities
and the node marks — Prop. 12: such a term exists iff ``I ⊨ Q_A(ā)``
for the backward-mapped query.  We implement both directions
executably:

* :func:`find_jointly_annotated_term` — bottom-up search over pairs
  (automaton state, element tuple), the semantic counterpart of
  evaluating ``Q_A``;
* :func:`is_jointly_annotated_term` — an independent checker of
  conditions (3)/(4) of the definition.
"""

from __future__ import annotations

from itertools import product as iproduct
from typing import Optional

from repro.core.instance import Instance
from repro.automata.nta import NTA
from repro.td.codes import CodeNode, TreeCode


def _marks_hold(marks, values: tuple, instance: Instance) -> bool:
    return all(
        instance.has_tuple(pred, tuple(values[p] for p in positions))
        for pred, positions in marks
    )


def find_jointly_annotated_term(
    nta: NTA,
    instance: Instance,
    max_pairs: int = 100_000,
) -> Optional[tuple[TreeCode, dict]]:
    """An accepted code + node assignment over ``instance``, or None.

    Returns ``(code, assignment)`` where ``assignment`` maps each
    :class:`CodeNode` (by identity) to its element tuple; the root's
    tuple is the ``ā`` of Prop. 12.
    """
    domain = sorted(instance.active_domain(), key=repr)
    if not domain:
        return None
    k = nta.width

    # inhabited: (state, values) -> witness CodeNode; assignment side table
    inhabited: dict = {}
    assignment: dict = {}

    def tuples_matching(marks):
        """All k-tuples of elements satisfying the marks — seeded from
        the mark atoms to avoid blind |adom|^k enumeration."""
        # positions constrained by marks get candidates from facts
        for values in iproduct(domain, repeat=k):
            if _marks_hold(marks, values, instance):
                yield values

    changed = True
    while changed:
        changed = False
        for t in nta.transitions:
            if t.arity == 0:
                for values in tuples_matching(t.symbol[0]):
                    key = (t.target, values)
                    if key in inhabited:
                        continue
                    node = CodeNode(t.symbol[0], ())
                    inhabited[key] = node
                    assignment[id(node)] = values
                    changed = True
                    if len(inhabited) > max_pairs:
                        raise RuntimeError("annotated-term search blew up")
                continue
            child_options = []
            feasible = True
            for child_state in t.children:
                options = [
                    (values, node)
                    for (state, values), node in inhabited.items()
                    if state == child_state
                ]
                if not options:
                    feasible = False
                    break
                child_options.append(options)
            if not feasible:
                continue
            for combo in iproduct(*child_options):
                for values in tuples_matching(t.symbol[0]):
                    ok = True
                    for (child_values, _node), emap in zip(
                        combo, t.symbol[1]
                    ):
                        for i, j in emap:
                            if values[i] != child_values[j]:
                                ok = False
                                break
                        if not ok:
                            break
                    if not ok:
                        continue
                    key = (t.target, values)
                    if key in inhabited:
                        continue
                    node = CodeNode(
                        t.symbol[0],
                        tuple(
                            (emap, child_node)
                            for emap, (_v, child_node) in zip(
                                t.symbol[1], combo
                            )
                        ),
                    )
                    inhabited[key] = node
                    assignment[id(node)] = values
                    changed = True
                    if len(inhabited) > max_pairs:
                        raise RuntimeError(
                            "annotated-term search blew up"
                        )
    for (state, _values), node in inhabited.items():
        if state in nta.final:
            code = TreeCode(node, k)
            return code, {
                id(n): assignment[id(n)] for n in node.nodes()
            }
    return None


def is_jointly_annotated_term(
    code: TreeCode,
    assignment: dict,
    nta: NTA,
    instance: Instance,
) -> bool:
    """Check the Prop. 12 conditions independently.

    ``assignment`` maps ``id(node)`` to the node's element tuple; the
    code must be accepted by the automaton, every node's marks must hold
    of its tuple in ``instance`` (conditions (3)/(4)), and edge maps
    must equate the connected positions.
    """
    if not nta.accepts(code):
        return False

    def check(node: CodeNode) -> bool:
        values = assignment[id(node)]
        if not _marks_hold(node.marks, values, instance):
            return False
        for emap, child in node.children:
            child_values = assignment[id(child)]
            for i, j in emap:
                if values[i] != child_values[j]:
                    return False
            if not check(child):
                return False
        return True

    return check(code.root)
