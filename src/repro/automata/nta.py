"""Nondeterministic tree automata over tree codes (§3).

An :class:`NTA` runs bottom-up on tree codes.  A node's *symbol* is its
alphabet letter ``σ^{s̄}_L``: the pair ``(marks, edge-maps)`` as produced
by :meth:`repro.td.codes.CodeNode.label`.  We allow arbitrary bounded
outdegree instead of the paper's strict binarization (see
:mod:`repro.td.codes` for why this is inessential).

Provided operations: membership, emptiness with accepted-tree witness
extraction, product (intersection), projection onto a sub-signature
(Prop. 5), enumeration of accepted trees, and product-emptiness against
a *symbolic deterministic* automaton (used to complement the CQ-match
automaton without materializing the alphabet).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from itertools import product as iproduct
from typing import Callable, Iterator, Optional, Protocol

from repro.td.codes import CodeNode, TreeCode

Symbol = tuple  # (frozenset of AtomMark, tuple of EdgeMap)


@dataclass(frozen=True)
class Transition:
    """``(q_1, ..., q_m), σ → q`` (m = 0 for leaf transitions)."""

    children: tuple
    symbol: Symbol
    target: object

    @property
    def arity(self) -> int:
        return len(self.children)


class NTA:
    """A bottom-up nondeterministic tree automaton."""

    def __init__(self, transitions, final, width: int) -> None:
        self.transitions: tuple[Transition, ...] = tuple(transitions)
        self.final: frozenset = frozenset(final)
        self.width = width
        self._by_symbol: dict = defaultdict(list)
        for t in self.transitions:
            self._by_symbol[t.symbol].append(t)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def states(self) -> set:
        out = set()
        for t in self.transitions:
            out.add(t.target)
            out.update(t.children)
        return out | set(self.final)

    def size(self) -> int:
        return len(self.transitions)

    def symbols(self) -> set:
        return set(self._by_symbol)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _states_of(self, node: CodeNode) -> set:
        child_state_sets = [
            self._states_of(child) for _, child in node.children
        ]
        symbol = node.label()
        result = set()
        for t in self._by_symbol.get(symbol, ()):
            if t.arity != len(child_state_sets):
                continue
            if all(
                t.children[i] in child_state_sets[i]
                for i in range(t.arity)
            ):
                result.add(t.target)
        return result

    def accepts(self, code: TreeCode) -> bool:
        """Whether some run labels the root with a final state."""
        if code.width != self.width:
            return False
        return bool(self._states_of(code.root) & self.final)

    # ------------------------------------------------------------------
    # emptiness and witnesses
    # ------------------------------------------------------------------
    def witness(self) -> Optional[TreeCode]:
        """An accepted tree code, or None when the language is empty."""
        inhabited: dict = {}
        changed = True
        while changed:
            changed = False
            for t in self.transitions:
                if t.target in inhabited:
                    continue
                if all(c in inhabited for c in t.children):
                    node = CodeNode(
                        t.symbol[0],
                        tuple(
                            (emap, inhabited[c])
                            for emap, c in zip(t.symbol[1], t.children)
                        ),
                    )
                    inhabited[t.target] = node
                    changed = True
        for q in self.final:
            if q in inhabited:
                return TreeCode(inhabited[q], self.width)
        return None

    def is_empty(self) -> bool:
        return self.witness() is None

    # ------------------------------------------------------------------
    # closure operations
    # ------------------------------------------------------------------
    def product(self, other: "NTA") -> "NTA":
        """Intersection (synchronized product)."""
        if self.width != other.width:
            raise ValueError("width mismatch in product")
        transitions = []
        for symbol, mine in self._by_symbol.items():
            theirs = other._by_symbol.get(symbol, ())
            for t1 in mine:
                for t2 in theirs:
                    if t1.arity != t2.arity:
                        continue
                    transitions.append(
                        Transition(
                            tuple(zip(t1.children, t2.children)),
                            symbol,
                            (t1.target, t2.target),
                        )
                    )
        final = {
            (q1, q2) for q1 in self.final for q2 in other.final
        }
        return NTA(transitions, final, self.width)

    def union(self, other: "NTA") -> "NTA":
        """Union via disjoint renaming of states."""
        if self.width != other.width:
            raise ValueError("width mismatch in union")
        transitions = [
            Transition(
                tuple(("L", c) for c in t.children), t.symbol, ("L", t.target)
            )
            for t in self.transitions
        ] + [
            Transition(
                tuple(("R", c) for c in t.children), t.symbol, ("R", t.target)
            )
            for t in other.transitions
        ]
        final = {("L", q) for q in self.final} | {
            ("R", q) for q in other.final
        }
        return NTA(transitions, final, self.width)

    def project(self, keep_predicates) -> "NTA":
        """Projection onto a sub-signature (Prop. 5).

        Marks of relations outside ``keep_predicates`` are erased from
        every symbol; states and finality are unchanged, so the language
        is exactly the projection of the original language.
        """
        keep = set(keep_predicates)
        transitions = [
            Transition(
                t.children,
                (
                    frozenset(m for m in t.symbol[0] if m[0] in keep),
                    t.symbol[1],
                ),
                t.target,
            )
            for t in self.transitions
        ]
        return NTA(transitions, self.final, self.width)

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> "NTA":
        """Relabel symbols by an arbitrary function."""
        return NTA(
            [
                Transition(t.children, fn(t.symbol), t.target)
                for t in self.transitions
            ],
            self.final,
            self.width,
        )

    def trim(self) -> "NTA":
        """Remove transitions not both inhabited and co-reachable."""
        inhabited: set = set()
        changed = True
        while changed:
            changed = False
            for t in self.transitions:
                if t.target not in inhabited and all(
                    c in inhabited for c in t.children
                ):
                    inhabited.add(t.target)
                    changed = True
        useful = set(q for q in self.final if q in inhabited)
        changed = True
        while changed:
            changed = False
            for t in self.transitions:
                if t.target in useful:
                    for c in t.children:
                        if c in inhabited and c not in useful:
                            useful.add(c)
                            changed = True
        transitions = [
            t
            for t in self.transitions
            if t.target in useful and all(c in useful for c in t.children)
        ]
        return NTA(transitions, useful & self.final, self.width)

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def accepted_trees(self, max_size: int) -> Iterator[TreeCode]:
        """All accepted trees with at most ``max_size`` nodes.

        Dynamic programming by size; the stream is finite and exhaustive
        up to the bound (used by bounded determinacy checking and tests).
        """
        by_size: dict[int, dict] = defaultdict(lambda: defaultdict(list))
        for size in range(1, max_size + 1):
            for t in self.transitions:
                if t.arity == 0:
                    if size == 1:
                        node = CodeNode(t.symbol[0], ())
                        by_size[1][t.target].append(node)
                    continue
                # partitions of size-1 among children
                for split in _compositions(size - 1, t.arity):
                    options = []
                    feasible = True
                    for child_state, child_size in zip(t.children, split):
                        trees = by_size[child_size].get(child_state, [])
                        if not trees:
                            feasible = False
                            break
                        options.append(trees)
                    if not feasible:
                        continue
                    for combo in iproduct(*options):
                        node = CodeNode(
                            t.symbol[0],
                            tuple(
                                (emap, sub)
                                for emap, sub in zip(t.symbol[1], combo)
                            ),
                        )
                        by_size[size][t.target].append(node)
            for q in self.final:
                for node in by_size[size].get(q, ()):
                    yield TreeCode(node, self.width)


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` positives."""
    if parts == 0:
        if total == 0:
            yield ()
        return
    if parts == 1:
        if total >= 1:
            yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


# ---------------------------------------------------------------------------
# symbolic deterministic automata
# ---------------------------------------------------------------------------


class SymbolicDTA(Protocol):
    """A deterministic bottom-up automaton given by functions.

    Used for automata whose state space is huge but whose reachable part
    is small (e.g. the CQ-match automaton): the transition function is
    *computed* from the symbol rather than tabulated, which also gives
    complementation for free (negate ``is_final``).
    """

    def leaf(self, symbol: Symbol) -> object: ...

    def step(self, child_states: tuple, symbol: Symbol) -> object: ...

    def is_final(self, state: object) -> bool: ...


def run_symbolic(dta: SymbolicDTA, code: TreeCode) -> object:
    """The (unique) state the symbolic automaton reaches at the root."""

    def walk(node: CodeNode):
        if not node.children:
            return dta.leaf(node.label())
        child_states = tuple(walk(child) for _, child in node.children)
        return dta.step(child_states, node.label())

    return walk(code.root)


def emptiness_against(
    nta: NTA,
    dta: SymbolicDTA,
    accept_pair: Callable[[bool, object], bool],
    max_pairs: int = 200_000,
) -> Optional[TreeCode]:
    """A tree accepted by ``nta`` whose ``dta`` root state satisfies
    ``accept_pair(nta_state_is_final, dta_state)`` — or None.

    This is the product-emptiness of ``nta`` with the (possibly
    complemented) symbolic automaton, computed over reachable pairs only.
    ``max_pairs`` guards against blow-up; exceeding it raises.
    """
    # inhabited: (nta_state, dta_state) -> witness CodeNode
    inhabited: dict = {}
    by_nta_state: dict = defaultdict(list)

    def add(pair, node) -> bool:
        if pair in inhabited:
            return False
        if len(inhabited) >= max_pairs:
            raise RuntimeError(
                f"emptiness_against exceeded {max_pairs} reachable pairs"
            )
        inhabited[pair] = node
        by_nta_state[pair[0]].append(pair)
        return True

    changed = True
    while changed:
        changed = False
        for t in nta.transitions:
            if t.arity == 0:
                s = dta.leaf(t.symbol)
                node = CodeNode(t.symbol[0], ())
                if add((t.target, s), node):
                    changed = True
                continue
            pools = [by_nta_state.get(c, ()) for c in t.children]
            if any(not pool for pool in pools):
                continue
            for combo in iproduct(*[list(p) for p in pools]):
                child_dta = tuple(pair[1] for pair in combo)
                s = dta.step(child_dta, t.symbol)
                node = CodeNode(
                    t.symbol[0],
                    tuple(
                        (emap, inhabited[pair])
                        for emap, pair in zip(t.symbol[1], combo)
                    ),
                )
                if add((t.target, s), node):
                    changed = True
    for (q, s), node in inhabited.items():
        if q in nta.final and accept_pair(True, s):
            return TreeCode(node, nta.width)
    return None
