"""Conjunctive queries (§2).

A :class:`ConjunctiveQuery` is ``q(x̄) = ∃ȳ φ(x̄, ȳ)`` with ``φ`` a
conjunction of atoms.  Provides canonical databases, evaluation by
homomorphism (Chandra–Merlin), classical containment, radius and
connectivity, and renaming utilities used throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.core.atoms import Atom, atoms_variables
from repro.core.gaifman import is_connected as _instance_connected
from repro.core.gaifman import radius as _instance_radius
from repro.core.homomorphism import has_homomorphism, homomorphisms
from repro.core.instance import Instance
from repro.core.terms import Variable, is_variable
from repro.util.canonical import canonical_form
from repro.util.fresh import FreshNames


@dataclass(frozen=True, slots=True)
class CanonConst:
    """The canonical-database constant ``c_x`` for a variable ``x``."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"c[{self.name}]"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query with ordered answer variables.

    ``head_vars`` may be empty (Boolean query).  Every head variable must
    occur in the body (safety).
    """

    head_vars: tuple[Variable, ...]
    atoms: tuple[Atom, ...]
    name: str = "Q"

    def __init__(
        self,
        head_vars: Iterable[Variable] = (),
        atoms: Iterable[Atom] = (),
        name: str = "Q",
    ) -> None:
        object.__setattr__(self, "head_vars", tuple(head_vars))
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "name", name)
        body_vars = atoms_variables(self.atoms)
        for var in self.head_vars:
            if var not in body_vars:
                raise ValueError(f"unsafe head variable {var} in CQ {name}")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.head_vars)

    def is_boolean(self) -> bool:
        return not self.head_vars

    def variables(self) -> set[Variable]:
        return atoms_variables(self.atoms)

    def existential_variables(self) -> set[Variable]:
        return self.variables() - set(self.head_vars)

    def predicates(self) -> set[str]:
        return {a.pred for a in self.atoms}

    def size(self) -> int:
        """Number of atoms."""
        return len(self.atoms)

    def canonical_database(self) -> Instance:
        """``Canondb(Q)``: each variable ``x`` frozen to ``c_x`` (§2)."""
        frozen = {v: CanonConst(v.name) for v in self.variables()}
        return Instance(a.substitute(frozen) for a in self.atoms)

    def frozen_head(self) -> tuple:
        """The head tuple in canonical-database constants."""
        return tuple(CanonConst(v.name) for v in self.head_vars)

    def is_connected(self) -> bool:
        """Gaifman connectivity of the canonical database."""
        return _instance_connected(self.canonical_database())

    def radius(self) -> float:
        """Radius of the Gaifman graph of the canonical database (§2)."""
        return _instance_radius(self.canonical_database())

    def certificate(self) -> tuple:
        """Renaming-invariant identity (for dedup up to isomorphism)."""
        return canonical_form(self.atoms, self.head_vars)

    # ------------------------------------------------------------------
    # evaluation (Chandra–Merlin)
    # ------------------------------------------------------------------
    def evaluate(self, instance: Instance) -> set[tuple]:
        """Output of the query: all head-variable images of homomorphisms."""
        seen: set[tuple] = set()
        for hom in homomorphisms(self.atoms, instance):
            seen.add(tuple(hom[v] for v in self.head_vars))
        return seen

    def holds(self, instance: Instance, answer: Sequence = ()) -> bool:
        """``I ⊨ Q(answer)``; for Boolean queries pass no answer."""
        if len(answer) != self.arity:
            raise ValueError(
                f"arity mismatch: query has {self.arity}, got {len(answer)}"
            )
        fixed = dict(zip(self.head_vars, answer))
        return has_homomorphism(self.atoms, instance, fixed)

    def boolean(self, instance: Instance) -> bool:
        """Truth value on ``instance`` ignoring head variables."""
        return has_homomorphism(self.atoms, instance)

    # ------------------------------------------------------------------
    # containment and equivalence
    # ------------------------------------------------------------------
    def is_contained_in(self, other: "ConjunctiveQuery") -> bool:
        """``self ⊑ other``: a containment mapping from other into self."""
        if self.arity != other.arity:
            return False
        canon = self.canonical_database()
        fixed = dict(zip(other.head_vars, self.frozen_head()))
        return has_homomorphism(other.atoms, canon, fixed)

    def is_equivalent_to(self, other: "ConjunctiveQuery") -> bool:
        return self.is_contained_in(other) and other.is_contained_in(self)

    def core(self) -> "ConjunctiveQuery":
        """A core of the query: minimal equivalent sub-query.

        Repeatedly tries to drop an atom while preserving equivalence (a
        folding endomorphism exists).  Exponential in the worst case but
        the queries we core are small.
        """
        atoms = list(self.atoms)
        changed = True
        while changed:
            changed = False
            for i in range(len(atoms)):
                candidate = atoms[:i] + atoms[i + 1:]
                used = atoms_variables(candidate)
                if any(v not in used for v in self.head_vars):
                    continue
                smaller = ConjunctiveQuery(self.head_vars, candidate, self.name)
                if smaller.is_equivalent_to(self):
                    atoms = candidate
                    changed = True
                    break
        return ConjunctiveQuery(self.head_vars, atoms, self.name)

    # ------------------------------------------------------------------
    # renaming
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping) -> "ConjunctiveQuery":
        """Apply a term substitution to head and body."""
        head = tuple(mapping.get(v, v) for v in self.head_vars)
        for term in head:
            if not is_variable(term):
                raise ValueError("substitution must keep head variables")
        return ConjunctiveQuery(
            head, tuple(a.substitute(mapping) for a in self.atoms), self.name
        )

    def rename_apart(self, fresh: Optional[FreshNames] = None) -> "ConjunctiveQuery":
        """A copy with all variables renamed to globally fresh ones."""
        fresh = fresh or FreshNames("u")
        renaming = {v: Variable(fresh()) for v in self.variables()}
        return self.substitute(renaming)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = ", ".join(v.name for v in self.head_vars)
        body = ", ".join(map(repr, self.atoms))
        return f"{self.name}({head}) :- {body}"


def cq_from_instance(
    instance: Instance, answer: Sequence = (), name: str = "Q"
) -> ConjunctiveQuery:
    """Interpret an instance as a CQ (its elements become variables).

    Used by the forward–backward method (Prop. 8): "interpreting the
    resulting facts as a query".  ``answer`` lists elements that become
    answer variables, in order.
    """
    var_of = {
        e: Variable(f"z{i}")
        for i, e in enumerate(sorted(instance.active_domain(), key=repr))
    }
    atoms = tuple(
        Atom(f.pred, tuple(var_of[a] for a in f.args))
        for f in sorted(instance.facts(), key=repr)
    )
    head = tuple(var_of[e] for e in answer)
    return ConjunctiveQuery(head, atoms, name)


def iter_subqueries(query: ConjunctiveQuery) -> Iterator[ConjunctiveQuery]:
    """All sub-queries obtained by dropping one atom (safety permitting)."""
    for i in range(len(query.atoms)):
        rest = query.atoms[:i] + query.atoms[i + 1:]
        if set(query.head_vars) <= atoms_variables(rest):
            yield ConjunctiveQuery(query.head_vars, rest, query.name)
