"""Query containment.

Decidable cases implemented exactly:

* CQ ⊑ CQ, UCQ ⊑ UCQ — Chandra–Merlin / Sagiv–Yannakakis.
* CQ ⊑ Datalog — evaluate the Datalog query on the canonical database
  (exact: the canonical database is the most general model of the CQ and
  Datalog is preserved under homomorphisms).
* Datalog ⊑ CQ / UCQ — exact via the tree-automata pipeline
  (:mod:`repro.automata.containment`, the technique behind Thm 5): the
  forward automaton captures the approximations of the program; a
  deterministic "CQ matches" automaton is complemented; emptiness of the
  product decides containment and produces a counterexample expansion.

Datalog ⊑ Datalog is undecidable [25]; :func:`datalog_contained_bounded`
is a sound refuter parameterized by expansion depth.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from repro.core import stats as _stats
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery
from repro.core.ucq import UCQ, as_ucq
from repro.core.approximation import approximations


def _phase(name: str):
    """Wall-time phase context when an engine-stats collector is active."""
    collector = _stats.active()
    return collector.phase(name) if collector is not None else nullcontext()


class Verdict(Enum):
    """Three-valued answer for semi-decidable problems."""

    YES = "yes"
    NO = "no"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        return self is Verdict.YES


@dataclass(frozen=True)
class ContainmentResult:
    """Outcome of a containment check, with an optional counterexample."""

    verdict: Verdict
    counterexample: Optional[ConjunctiveQuery] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.verdict is Verdict.YES


QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]


def cq_contained(sub: ConjunctiveQuery, sup: ConjunctiveQuery) -> bool:
    """``sub ⊑ sup`` for CQs (NP-complete, Chandra–Merlin)."""
    with _phase("containment.cq"):
        return sub.is_contained_in(sup)


def ucq_contained(sub: QueryLike, sup: QueryLike) -> bool:
    """``sub ⊑ sup`` for (coercible-to-)UCQs (Π₂ᵖ-complete)."""
    with _phase("containment.ucq"):
        return as_ucq(sub).is_contained_in(as_ucq(sup))


def cq_contained_in_datalog(
    sub: Union[ConjunctiveQuery, UCQ], sup: DatalogQuery
) -> bool:
    """``sub ⊑ sup`` for a CQ/UCQ in a Datalog query — exact.

    The canonical database of each disjunct is evaluated under ``sup``;
    by genericity and monotonicity this decides containment.
    """
    with _phase("containment.cq_in_datalog"):
        for disjunct in as_ucq(sub).disjuncts:
            canon = disjunct.canonical_database()
            if not sup.holds(canon, disjunct.frozen_head()):
                return False
        return True


def datalog_contained_in_ucq(
    sub: DatalogQuery,
    sup: Union[ConjunctiveQuery, UCQ],
    max_depth: Optional[int] = None,
) -> ContainmentResult:
    """``sub ⊑ sup`` for Datalog in CQ/UCQ.

    Exact (2ExpTime worst case) via the automata pipeline when
    ``max_depth`` is None; with ``max_depth`` set, falls back to the
    bounded sound refuter over expansions (YES becomes UNKNOWN).
    """
    sup_ucq = as_ucq(sup)
    if max_depth is None:
        from repro.automata.containment import datalog_in_ucq_exact

        with _phase("containment.automata"):
            return datalog_in_ucq_exact(sub, sup_ucq)
    with _phase("containment.bounded"):
        for approx in approximations(sub, max_depth):
            if not any(approx.is_contained_in(d) for d in sup_ucq.disjuncts):
                return ContainmentResult(
                    Verdict.NO, approx,
                    f"expansion of depth ≤ {max_depth} escapes",
                )
        return ContainmentResult(
            Verdict.UNKNOWN, None,
            f"all expansions up to depth {max_depth} pass",
        )


def datalog_contained_bounded(
    sub: DatalogQuery, sup: DatalogQuery, max_depth: int
) -> ContainmentResult:
    """Sound refuter for Datalog ⊑ Datalog (undecidable in general [25]).

    Checks every expansion of ``sub`` up to ``max_depth`` against ``sup``
    (each individual check is exact).  ``NO`` results carry a witness
    expansion; otherwise the verdict is ``UNKNOWN``.
    """
    with _phase("containment.bounded"):
        for approx in approximations(sub, max_depth):
            if not cq_contained_in_datalog(approx, sup):
                return ContainmentResult(
                    Verdict.NO, approx, "witness expansion found"
                )
        return ContainmentResult(
            Verdict.UNKNOWN, None, f"verified up to depth {max_depth}"
        )


def datalog_equivalent_bounded(
    left: DatalogQuery, right: DatalogQuery, max_depth: int
) -> ContainmentResult:
    """Bounded equivalence check: both containments, bounded."""
    forward = datalog_contained_bounded(left, right, max_depth)
    if forward.verdict is Verdict.NO:
        return forward
    backward = datalog_contained_bounded(right, left, max_depth)
    if backward.verdict is Verdict.NO:
        return backward
    return ContainmentResult(
        Verdict.UNKNOWN, None, f"equivalent up to depth {max_depth}"
    )
