"""Columnar hash-join evaluation engine (the ``columnar`` backend).

Instead of per-tuple backtracking homomorphism search, each rule body
is compiled **once per fixpoint call** into an explicit hash-join plan:

* relations are stored as *column arrays* (one Python list per
  argument position) with an exact-duplicate row set;
* each join step builds a hash table over the target relation keyed by
  the argument positions that are bound at that point (constants and
  already-joined variables) and probes it with the current batch —
  build tables are cached per ``(relation, key positions)`` and
  maintained incrementally as the relation grows, so a fixpoint never
  rebuilds a table it already has;
* intermediate results are *batches*: a tuple of variable columns.  A
  join step gathers matching (batch row, relation row) index pairs and
  materializes only the columns still needed downstream (projection is
  pushed into every step, with the head projection applied once at the
  end of the batch);
* semi-naive deltas flow through the same plans as column batches
  seeded from the delta rows of one IDB body atom.

The engine mirrors the interpreted strategies exactly — ``naive``,
``seminaive`` and ``stratified`` (reusing the SCC execution plan of
:mod:`repro.core.evaluation`) — and the engine-equivalence property
tests assert identical fixpoints across backends.  Work is reported
through the columnar counters of :class:`repro.core.stats.EngineStats`
(``join_build_rows``, ``join_probe_rows``, ``join_output_rows``,
``columnar_batches``); the backtracking counters (``hom_calls``,
``search_steps``, ``rows_scanned``) stay at zero by construction.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, cast

from repro.core import stats as _stats
from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, Rule
from repro.core.instance import Instance
from repro.core.stats import EngineStats
from repro.core.terms import Term, is_variable

#: one stored row (column values in position order)
Row = tuple[object, ...]

#: how a seed atom's relation rows become a batch — see
#: :func:`_atom_binding_spec`
SeedSpec = tuple[
    int,                            # expected row arity
    tuple[int, ...],                # positions projected into the batch
    tuple[tuple[int, Term], ...],   # (position, constant) filters
    tuple[tuple[int, int], ...],    # repeated-variable equality pairs
    tuple[Term, ...],               # batch variables in slot order
]

# ---------------------------------------------------------------------------
# columnar storage
# ---------------------------------------------------------------------------


class _Relation:
    """One relation as column arrays plus cached hash-join build tables.

    Append-only during a fixpoint: build tables record how many rows
    they have indexed and extend themselves incrementally, so the
    per-round cost of re-probing a grown relation is only the new rows.
    """

    __slots__ = ("arity", "count", "columns", "row_set", "tables")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.count = 0
        self.columns: list[list[object]] = [[] for _ in range(arity)]
        self.row_set: set[Row] = set()
        # key positions -> (hash table: key -> row indices, rows indexed)
        self.tables: dict[
            tuple[int, ...], tuple[dict[object, list[int]], int]
        ] = {}

    def append(self, row: Row) -> bool:
        """Add a row; returns True when it was new."""
        if row in self.row_set:
            return False
        if len(row) != self.arity:
            raise ValueError(
                f"columnar relation of arity {self.arity} cannot hold "
                f"row {row!r}"
            )
        self.row_set.add(row)
        for column, value in zip(self.columns, row):
            column.append(value)
        self.count += 1
        return True

    def table_for(
        self, positions: tuple[int, ...], collector: Optional[EngineStats]
    ) -> dict[object, list[int]]:
        """The build table keyed on ``positions``, extended to ``count``.

        Single-position keys hash the bare value (the common case);
        multi-position keys hash the value tuple.
        """
        empty: dict[object, list[int]] = {}
        table, built = self.tables.get(positions, (empty, 0))
        if built < self.count:
            if collector is not None:
                collector.join_build_rows += self.count - built
            if len(positions) == 1:
                column = self.columns[positions[0]]
                for row in range(built, self.count):
                    table.setdefault(column[row], []).append(row)
            else:
                cols = [self.columns[p] for p in positions]
                for row in range(built, self.count):
                    key = tuple(col[row] for col in cols)
                    table.setdefault(key, []).append(row)
            self.tables[positions] = (table, self.count)
        return table


class _Store:
    """All relations of one fixpoint run.

    Keyed by ``(pred, arity)`` — instances may hold mixed-arity rows
    under one predicate name, and the interpreted engine tolerates
    that (an atom simply never matches rows of the wrong arity).
    """

    __slots__ = ("relations", "derived")

    def __init__(self, instance: Instance) -> None:
        self.relations: dict[tuple[str, int], _Relation] = {}
        #: facts added beyond the input instance, in derivation order
        self.derived: list[tuple[str, Row]] = []
        for pred in instance.predicates():
            for row in instance.tuples(pred):
                self._get(pred, len(row)).append(row)

    def _get(self, pred: str, arity: int) -> _Relation:
        key = (pred, arity)
        relation = self.relations.get(key)
        if relation is None:
            relation = self.relations[key] = _Relation(arity)
        return relation

    def add(self, pred: str, row: Row) -> bool:
        """Add a derived fact; returns True when it was new."""
        if self._get(pred, len(row)).append(row):
            self.derived.append((pred, row))
            return True
        return False

    def has(self, pred: str, row: Row) -> bool:
        relation = self.relations.get((pred, len(row)))
        return relation is not None and row in relation.row_set

    def materialize(self, instance: Instance) -> Instance:
        """The input instance plus every derived fact."""
        out = instance.copy()
        for pred, row in self.derived:
            out.add_tuple(pred, row)
        return out


# ---------------------------------------------------------------------------
# plan compilation
# ---------------------------------------------------------------------------


class _JoinStep:
    """One hash join of the current batch against a relation.

    ``key_positions`` are the relation positions covered by the probe
    key; ``key_sources`` aligns with them: ``("slot", i)`` reads batch
    column ``i``, ``("const", v)`` contributes a fixed value.
    ``new_positions`` are the relation positions whose values become
    new batch columns (first occurrences of fresh variables);
    ``eq_checks`` are ``(position, position)`` pairs a candidate row
    must agree on (a fresh variable repeated within the atom).
    ``keep_slots`` are the incoming batch columns still needed after
    this step (projection pushdown).
    """

    __slots__ = (
        "pred",
        "arity",
        "key_positions",
        "key_sources",
        "new_positions",
        "eq_checks",
        "keep_slots",
    )

    def __init__(
        self,
        pred: str,
        arity: int,
        key_positions: tuple[int, ...],
        key_sources: tuple[tuple[str, object], ...],
        new_positions: tuple[int, ...],
        eq_checks: tuple[tuple[int, int], ...],
        keep_slots: tuple[int, ...],
    ) -> None:
        self.pred = pred
        self.arity = arity
        self.key_positions = key_positions
        self.key_sources = key_sources
        self.new_positions = new_positions
        self.eq_checks = eq_checks
        self.keep_slots = keep_slots


class _BodyPlan:
    """A compiled rule body: seed spec + join steps + head projection.

    ``seed`` is None for full-body plans (the batch starts as the
    single empty row) or the delta atom for semi-naive plans (the batch
    starts from the delta's rows).  ``head_sources`` mirrors the head
    atom: ``("slot", i)`` projects batch column ``i``, ``("const", v)``
    emits a constant column.
    """

    __slots__ = ("rule", "seed", "seed_spec", "steps", "head_sources")

    def __init__(
        self,
        rule: Rule,
        seed: Optional[Atom],
        seed_spec: Optional[SeedSpec],
        steps: tuple[_JoinStep, ...],
        head_sources: tuple[tuple[str, object], ...],
    ) -> None:
        self.rule = rule
        self.seed = seed
        self.seed_spec = seed_spec
        self.steps = steps
        self.head_sources = head_sources


def _atom_binding_spec(atom: Atom) -> SeedSpec:
    """How to turn rows of ``atom``'s relation into a seed batch.

    Returns ``(arity, var_positions, const_checks, eq_checks,
    variables)``: the expected row arity, positions projected into the
    batch (first occurrence per variable), ``(position, constant)``
    filters, repeated-variable equality pairs, and the variables in
    slot order.
    """
    var_positions: list[int] = []
    variables: list[Term] = []
    const_checks: list[tuple[int, Term]] = []
    eq_checks: list[tuple[int, int]] = []
    first_at: dict[Term, int] = {}
    for pos, term in enumerate(atom.args):
        if is_variable(term):
            if term in first_at:
                eq_checks.append((first_at[term], pos))
            else:
                first_at[term] = pos
                var_positions.append(pos)
                variables.append(term)
        else:
            const_checks.append((pos, term))
    return (
        atom.arity,
        tuple(var_positions),
        tuple(const_checks),
        tuple(eq_checks),
        tuple(variables),
    )


def _order_atoms(
    atoms: Sequence[Atom], store: _Store, bound: Iterable[Term]
) -> list[Atom]:
    """Connected, smallest-relation-first join order.

    Prefers atoms sharing a variable with what is already bound (so
    every step after the first probes on a non-empty key whenever the
    body is connected), breaking ties by relation size at compile time.
    """
    remaining = list(atoms)
    ordered: list[Atom] = []
    bound_vars: set[Term] = set(bound)

    def size(atom: Atom) -> int:
        relation = store.relations.get((atom.pred, atom.arity))
        return relation.count if relation is not None else 0

    while remaining:
        connected = [
            a for a in remaining if a.variables() & bound_vars
        ] or remaining
        best = min(connected, key=size)
        remaining.remove(best)
        ordered.append(best)
        bound_vars |= best.variables()
    return ordered


def _compile_body(
    rule: Rule,
    atoms: Sequence[Atom],
    seed: Optional[Atom],
    store: _Store,
) -> _BodyPlan:
    """Compile ``atoms`` (the body minus ``seed``) into join steps."""
    seed_spec = None
    slots: list[Term] = []  # variable in each batch column
    if seed is not None:
        seed_spec = _atom_binding_spec(seed)
        slots = list(seed_spec[4])
    ordered = _order_atoms(atoms, store, slots)

    steps: list[_JoinStep] = []
    for index, atom in enumerate(ordered):
        key_positions: list[int] = []
        key_sources: list[tuple[str, object]] = []
        new_positions: list[int] = []
        eq_checks: list[tuple[int, int]] = []
        first_at: dict[Term, int] = {}
        new_vars: list[Term] = []
        for pos, term in enumerate(atom.args):
            if not is_variable(term):
                key_positions.append(pos)
                key_sources.append(("const", term))
            elif term in first_at:
                eq_checks.append((first_at[term], pos))
            elif term in slots:
                key_positions.append(pos)
                key_sources.append(("slot", slots.index(term)))
                first_at[term] = pos
            else:
                first_at[term] = pos
                new_positions.append(pos)
                new_vars.append(term)
        # projection pushdown: keep only the variables some later atom
        # or the head still reads
        needed = set(rule.head.variables())
        for later in ordered[index + 1:]:
            needed |= later.variables()
        keep_slots = tuple(
            i for i, var in enumerate(slots) if var in needed
        )
        steps.append(
            _JoinStep(
                atom.pred,
                atom.arity,
                tuple(key_positions),
                tuple(key_sources),
                tuple(new_positions),
                tuple(eq_checks),
                keep_slots,
            )
        )
        slots = [slots[i] for i in keep_slots] + new_vars

    head_sources = tuple(
        ("slot", slots.index(term)) if is_variable(term) else ("const", term)
        for term in rule.head.args
    )
    return _BodyPlan(rule, seed, seed_spec, tuple(steps), head_sources)


class _ProgramPlans:
    """Lazily compiled plans: full-body per rule, delta per (rule, pos).

    Keyed by the (frozen, hashable) rule value itself — equal rules
    share one plan, and the keys stay valid for the rule objects the
    cached :func:`repro.core.evaluation._execution_plan` hands back.
    """

    __slots__ = ("store", "_full", "_delta")

    def __init__(self, store: _Store) -> None:
        self.store = store
        self._full: dict[Rule, _BodyPlan] = {}
        self._delta: dict[tuple[Rule, int], _BodyPlan] = {}

    def full(self, rule: Rule) -> _BodyPlan:
        plan = self._full.get(rule)
        if plan is None:
            plan = _compile_body(rule, rule.body, None, self.store)
            self._full[rule] = plan
        return plan

    def delta(self, rule: Rule, position: int) -> _BodyPlan:
        plan = self._delta.get((rule, position))
        if plan is None:
            rest = rule.body[:position] + rule.body[position + 1:]
            plan = _compile_body(
                rule, rest, rule.body[position], self.store
            )
            self._delta[(rule, position)] = plan
        return plan


# ---------------------------------------------------------------------------
# plan execution
# ---------------------------------------------------------------------------

#: a batch is one Python list per live variable (columns of equal length)
Batch = tuple[list[object], ...]

_EMPTY_BATCH: Batch = ()


def _seed_batch(
    spec: SeedSpec, rows: Sequence[Row]
) -> tuple[Batch, int]:
    """A batch of the seed atom's variable columns from delta rows."""
    arity, var_positions, const_checks, eq_checks, _ = spec
    rows = [
        row
        for row in rows
        if len(row) == arity
        and all(row[p] == v for p, v in const_checks)
        and all(row[a] == row[b] for a, b in eq_checks)
    ]
    columns = tuple([row[p] for row in rows] for p in var_positions)
    return columns, len(rows)


def _run_step(
    step: _JoinStep,
    store: _Store,
    batch: Batch,
    length: int,
    collector: Optional[EngineStats],
) -> tuple[Batch, int]:
    """Join ``batch`` with ``step``'s relation; returns the new batch."""
    relation = store.relations.get((step.pred, step.arity))
    if relation is None or relation.count == 0:
        return _EMPTY_BATCH, 0

    # ---- probe: (batch row, relation row) index pairs -----------------
    out_batch: list[int] = []
    out_rows: list[int] = []
    if step.key_positions:
        table = relation.table_for(step.key_positions, collector)
        keys: Sequence[object]
        if len(step.key_sources) == 1:
            kind, value = step.key_sources[0]
            keys = (
                batch[cast(int, value)] if kind == "slot"
                else [value] * length
            )
        else:
            key_columns = [
                batch[cast(int, value)] if kind == "slot"
                else [value] * length
                for kind, value in step.key_sources
            ]
            keys = list(zip(*key_columns))
        if collector is not None:
            collector.join_probe_rows += length
        for i in range(length):
            bucket = table.get(keys[i])
            if bucket:
                out_batch.extend([i] * len(bucket))
                out_rows.extend(bucket)
    else:
        # no bound position: cross join against the whole relation
        if collector is not None:
            collector.join_probe_rows += length
        rows = range(relation.count)
        for i in range(length):
            out_batch.extend([i] * relation.count)
            out_rows.extend(rows)

    if step.eq_checks:
        columns = relation.columns
        keep = [
            j
            for j, r in enumerate(out_rows)
            if all(columns[a][r] == columns[b][r] for a, b in step.eq_checks)
        ]
        out_batch = [out_batch[j] for j in keep]
        out_rows = [out_rows[j] for j in keep]
    if collector is not None:
        collector.join_output_rows += len(out_rows)
    if not out_rows:
        return _EMPTY_BATCH, 0

    # ---- gather: project surviving columns ----------------------------
    new_batch: list[list[object]] = []
    for slot in step.keep_slots:
        column = batch[slot]
        new_batch.append([column[i] for i in out_batch])
    for pos in step.new_positions:
        column = relation.columns[pos]
        new_batch.append([column[r] for r in out_rows])
    return tuple(new_batch), len(out_rows)


def _head_rows(
    plan: _BodyPlan, batch: Batch, length: int
) -> Iterable[Row]:
    """Project the head atom over a finished batch."""
    if not plan.head_sources:  # boolean goal: one empty tuple
        return [()] if length else []
    columns = [
        batch[cast(int, value)] if kind == "slot" else [value] * length
        for kind, value in plan.head_sources
    ]
    return zip(*columns)


def _run_plan(
    plan: _BodyPlan,
    store: _Store,
    collector: Optional[EngineStats],
    seed_rows: Optional[Sequence[Row]] = None,
) -> Iterable[Row]:
    """All head rows derivable through ``plan`` (duplicates possible)."""
    if plan.seed is None:
        batch, length = _EMPTY_BATCH, 1
    else:
        assert seed_rows is not None and plan.seed_spec is not None
        batch, length = _seed_batch(plan.seed_spec, seed_rows)
        if collector is not None:
            collector.columnar_batches += 1
    if not length:
        return ()
    for step in plan.steps:
        batch, length = _run_step(step, store, batch, length, collector)
        if not length:
            return ()
    return _head_rows(plan, batch, length)


# ---------------------------------------------------------------------------
# fixpoint strategies
# ---------------------------------------------------------------------------


def _fire_once(
    rules: Sequence[Rule],
    store: _Store,
    plans: _ProgramPlans,
    collector: Optional[EngineStats],
) -> int:
    """Fire each rule once on the current state, adding facts eagerly."""
    added = 0
    for rule in rules:
        if not rule.body:
            if store.add(rule.head.pred, rule.head.args):
                added += 1
            continue
        plan = plans.full(rule)
        for row in _run_plan(plan, store, collector):
            if store.add(rule.head.pred, row):
                added += 1
    if collector is not None:
        collector.facts_derived += added
    return added


def _columnar_naive(
    program: DatalogProgram,
    store: _Store,
    plans: _ProgramPlans,
    collector: Optional[EngineStats],
) -> None:
    changed = True
    while changed:
        if collector is not None:
            collector.fixpoint_rounds += 1
        changed = _fire_once(program.rules, store, plans, collector) > 0


def _columnar_seminaive(
    rules: Sequence[Rule],
    store: _Store,
    tracked: frozenset[str] | set[str],
    plans: _ProgramPlans,
    collector: Optional[EngineStats],
    prelude: Sequence[Rule] = (),
) -> None:
    """Semi-naive evaluation of one rule block, mirroring the
    interpreted engine's ``_seminaive_in_place`` round structure."""
    # Round 0: prelude fires eagerly, then every rule on the full state.
    if collector is not None:
        collector.fixpoint_rounds += 1
    _fire_once(prelude, store, plans, collector)
    delta: dict[str, list[Row]] = {}
    delta_sets: dict[str, set[Row]] = {}
    for rule in rules:
        if not rule.body:
            if not store.has(rule.head.pred, rule.head.args):
                rows = delta_sets.setdefault(rule.head.pred, set())
                if rule.head.args not in rows:
                    rows.add(rule.head.args)
                    delta.setdefault(rule.head.pred, []).append(
                        rule.head.args
                    )
            continue
        plan = plans.full(rule)
        pred = rule.head.pred
        for row in _run_plan(plan, store, collector):
            if not store.has(pred, row):
                rows = delta_sets.setdefault(pred, set())
                if row not in rows:
                    rows.add(row)
                    delta.setdefault(pred, []).append(row)
    added = sum(len(rows) for rows in delta.values())
    for pred, rows in delta.items():
        for row in rows:
            store.add(pred, row)
    if collector is not None:
        collector.facts_derived += added

    recursive = [
        rule
        for rule in rules
        if any(a.pred in tracked for a in rule.body)
    ]
    while delta and recursive:
        if collector is not None:
            collector.fixpoint_rounds += 1
        fresh: dict[str, list[Row]] = {}
        fresh_sets: dict[str, set[Row]] = {}
        for rule in recursive:
            pred = rule.head.pred
            for position, atom in enumerate(rule.body):
                if atom.pred not in tracked:
                    continue
                seed_rows = delta.get(atom.pred)
                if not seed_rows:
                    continue
                plan = plans.delta(rule, position)
                for row in _run_plan(plan, store, collector, seed_rows):
                    if not store.has(pred, row):
                        rows = fresh_sets.setdefault(pred, set())
                        if row not in rows:
                            rows.add(row)
                            fresh.setdefault(pred, []).append(row)
        added = sum(len(rows) for rows in fresh.values())
        for pred, rows in fresh.items():
            for row in rows:
                store.add(pred, row)
        if collector is not None:
            collector.facts_derived += added
        delta = fresh


def columnar_fixpoint(
    program: DatalogProgram,
    instance: Instance,
    strategy: str = "stratified",
    stats: Optional[EngineStats] = None,
) -> Instance:
    """``FPEval(Π, I)`` via batched hash joins over column arrays.

    Strategies mirror :mod:`repro.core.evaluation` exactly — ``naive``
    re-fires every rule per round, ``seminaive`` delta-tracks the whole
    IDB, ``stratified`` (the default) runs the SCC execution plan with
    per-component delta tracking — and compute the identical fixpoint.
    """
    if strategy not in ("naive", "seminaive", "stratified"):
        raise ValueError(f"unknown strategy {strategy!r}")
    with _stats.maybe_collecting(stats):
        collector = _stats.active()
        store = _Store(instance)
        plans = _ProgramPlans(store)
        if strategy == "naive":
            _columnar_naive(program, store, plans, collector)
        elif strategy == "seminaive":
            _columnar_seminaive(
                program.rules,
                store,
                program.idb_predicates(),
                plans,
                collector,
            )
        else:
            from repro.core.evaluation import _execution_plan

            for prelude, rules, _keys, tracked in _execution_plan(program):
                if rules:
                    _columnar_seminaive(
                        rules,
                        store,
                        tracked,
                        plans,
                        collector,
                        prelude=prelude,
                    )
                elif prelude:
                    if collector is not None:
                        collector.fixpoint_rounds += 1
                    _fire_once(prelude, store, plans, collector)
        return store.materialize(instance)
