"""Homomorphism engine.

Homomorphism search is the computational heart of the library: CQ
evaluation, containment, canonical tests, tiling-as-homomorphism and the
pebble-game machinery all reduce to it.  We implement backtracking join
over the atoms of the source pattern with

* per-atom candidate enumeration through the instance's positional index,
* dynamic "fewest candidates first" atom ordering driven by the
  instance's O(1) selectivity counts (with a static mode kept for the
  ablation benchmark ABL-HOM), and
* early consistency checks for repeated variables.

Unbound pattern slots use :data:`repro.core.instance.ANY`; ``None`` is a
legitimate data element and never acts as a wildcard.  Constants map to
themselves (standard CQ semantics, §2).

Pass ``stats=EngineStats()`` (or activate one ambiently via
:func:`repro.core.stats.collecting`) to count homomorphism calls, search
steps and candidate rows scanned.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.core import stats as _stats
from repro.core.atoms import Atom
from repro.core.instance import ANY, Instance
from repro.core.terms import Variable, is_variable

_MISSING = object()  # "no binding" marker distinct from any data value


def _pattern(atom: Atom, assignment: Mapping) -> list:
    """The match pattern of ``atom`` under the current partial assignment.

    Unbound variables become the ``ANY`` wildcard — *not* ``None``,
    which would incorrectly wildcard-match instances containing ``None``
    as a data element.
    """
    pattern = []
    for term in atom.args:
        if is_variable(term):
            pattern.append(assignment.get(term, ANY))
        else:
            pattern.append(term)
    return pattern


def _bindings_for_row(
    atom: Atom, row: tuple, assignment: Mapping
) -> Optional[dict]:
    """New variable bindings making ``atom`` match ``row``, or None.

    Checks consistency for repeated variables within the atom and against
    the existing assignment.  A variable bound to ``None`` counts as
    bound (hence the ``_MISSING`` sentinel rather than ``.get(term)``).
    """
    new: dict = {}
    for term, value in zip(atom.args, row):
        if is_variable(term):
            bound = assignment.get(term, _MISSING)
            if bound is _MISSING:
                bound = new.get(term, _MISSING)
            if bound is _MISSING:
                new[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return new


def _candidate_count(atom: Atom, target: Instance, assignment: Mapping) -> int:
    return target.count_matching(atom.pred, _pattern(atom, assignment))


def _search(
    atoms: Sequence[Atom],
    target: Instance,
    assignment: dict,
    dynamic: bool,
    stats=None,
) -> Iterator[dict]:
    """Yield total assignments extending ``assignment`` over all atoms.

    Iterative backtracking (an explicit frame stack): patterns with
    thousands of atoms — whole-instance homomorphism checks — must not
    hit the Python recursion limit.
    """
    if not atoms:
        yield dict(assignment)
        return

    remaining = list(atoms)

    def pick(pool: list[Atom]) -> Atom:
        if dynamic:
            best = min(
                range(len(pool)),
                key=lambda i: _candidate_count(pool[i], target, assignment),
            )
        else:
            best = 0
        return pool.pop(best)

    # each frame: (atom, row-iterator, bindings-made, rest-pool)
    first = pick(remaining)
    stack = [
        (
            first,
            target.matching(first.pred, _pattern(first, assignment)),
            None,
            remaining,
        )
    ]
    rows_scanned = 0
    steps = 1
    try:
        while stack:
            atom, rows, made, pool = stack[-1]
            if made is not None:
                for key in made:
                    del assignment[key]
                stack[-1] = (atom, rows, None, pool)
            advanced = False
            for row in rows:
                rows_scanned += 1
                new = _bindings_for_row(atom, row, assignment)
                if new is None:
                    continue
                assignment.update(new)
                if not pool:
                    yield dict(assignment)
                    for key in new:
                        del assignment[key]
                    continue
                stack[-1] = (atom, rows, new, pool)
                rest = list(pool)
                nxt = pick(rest)
                stack.append(
                    (
                        nxt,
                        target.matching(nxt.pred, _pattern(nxt, assignment)),
                        None,
                        rest,
                    )
                )
                steps += 1
                advanced = True
                break
            if not advanced:
                stack.pop()
    finally:
        if stats is not None:
            stats.rows_scanned += rows_scanned
            stats.search_steps += steps


def _connected_order(atoms: list[Atom], target: Instance) -> list[Atom]:
    """A one-shot join order: cheapest seed, then variable-connected.

    Used for large patterns where per-step candidate counting (dynamic
    ordering) costs more than it saves.  Relation sizes come from the
    instance's O(1) per-predicate counters.
    """
    remaining = list(atoms)
    ordered: list[Atom] = []
    bound: set = set()
    while remaining:
        connected = [
            a for a in remaining if a.variables() & bound
        ] or remaining
        best = min(
            connected,
            key=lambda a: target.size(a.pred),
        )
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered


_DYNAMIC_ATOM_LIMIT = 30


def resolve_plan(
    atoms: list[Atom], target: Instance, ordering: str = "auto"
) -> tuple[list[Atom], bool]:
    """Resolve an ordering request into ``(atom_order, dynamic_flag)``.

    Exposed so callers evaluating the same rule repeatedly (semi-naive
    rounds) can cache the resolved plan and replay it with
    ``ordering="static"`` / ``"dynamic"`` instead of re-planning —
    see :mod:`repro.core.evaluation`.
    """
    if ordering == "auto":
        ordering = (
            "dynamic" if len(atoms) <= _DYNAMIC_ATOM_LIMIT
            else "connected"
        )
    if ordering == "connected":
        return _connected_order(atoms, target), False
    if ordering == "static":
        return atoms, False
    if ordering == "dynamic":
        return atoms, True
    raise ValueError(f"unknown ordering {ordering!r}")


def homomorphisms(
    atoms: Iterable[Atom],
    target: Instance,
    fixed: Optional[Mapping[Variable, object]] = None,
    ordering: str = "auto",
    stats=None,
) -> Iterator[dict]:
    """All homomorphisms from the atom set into ``target``.

    ``fixed`` pre-binds variables (used to evaluate queries at a given
    tuple and to check rooted mappings).  ``ordering``:

    * ``"dynamic"`` — fewest-candidates-first at every step (best for
      small patterns);
    * ``"static"`` — the given atom order;
    * ``"connected"`` — one-shot connected join order;
    * ``"auto"`` (default) — dynamic below ``_DYNAMIC_ATOM_LIMIT``
      atoms, connected above.

    ``stats`` is an optional :class:`repro.core.stats.EngineStats`; when
    omitted the ambient collector (if any) is used.
    """
    atom_list = list(atoms)
    if stats is None:
        stats = _stats.active()
    if stats is not None:
        stats.hom_calls += 1
    # Every atom needs at least one row: an empty relation anywhere means
    # no homomorphism, and a static/connected order might otherwise scan
    # rows of earlier atoms before reaching the empty one.
    if any(target.size(atom.pred) == 0 for atom in atom_list):
        return
    atom_list, dynamic = resolve_plan(atom_list, target, ordering)
    assignment: dict = dict(fixed) if fixed else {}
    yield from _search(atom_list, target, assignment, dynamic, stats)


def find_homomorphism(
    atoms: Iterable[Atom],
    target: Instance,
    fixed: Optional[Mapping[Variable, object]] = None,
    ordering: str = "auto",
) -> Optional[dict]:
    """The first homomorphism found, or None."""
    return next(homomorphisms(atoms, target, fixed, ordering), None)


def has_homomorphism(
    atoms: Iterable[Atom],
    target: Instance,
    fixed: Optional[Mapping[Variable, object]] = None,
) -> bool:
    """Whether some homomorphism exists."""
    return find_homomorphism(atoms, target, fixed) is not None


def _instance_as_atoms(source: Instance) -> tuple[list[Atom], dict]:
    """View an instance as a pattern: one variable per domain element."""
    var_of = {e: Variable(f"_e{i}") for i, e in enumerate(sorted(
        source.active_domain(), key=repr))}
    pattern = [
        Atom(f.pred, tuple(var_of[a] for a in f.args)) for f in source.facts()
    ]
    return pattern, var_of


def instance_homomorphism(
    source: Instance, target: Instance
) -> Optional[dict]:
    """A homomorphism ``source -> target`` on elements, or None.

    This is the ``I → I'`` relation of §2: every element of the source may
    be renamed (there are no constants-in-data; data elements are
    freely mappable).
    """
    pattern, var_of = _instance_as_atoms(source)
    hom = find_homomorphism(pattern, target)
    if hom is None:
        return None
    return {elem: hom[var] for elem, var in var_of.items()}


def instance_maps_into(source: Instance, target: Instance) -> bool:
    """``source → target`` (§2 notation)."""
    return instance_homomorphism(source, target) is not None


def homomorphically_equivalent(left: Instance, right: Instance) -> bool:
    """Mutual homomorphisms in both directions."""
    return instance_maps_into(left, right) and instance_maps_into(right, left)


def is_partial_homomorphism(
    mapping: Mapping, source: Instance, target: Instance
) -> bool:
    """Check the pebble-game condition (§7).

    ``mapping`` is a partial map on the active domain of ``source``.  The
    condition: whenever all arguments of a source fact lie in the domain
    of ``mapping``, the image fact must be in ``target``.
    """
    dom = set(mapping)
    for fact in source.facts():
        if all(arg in dom for arg in fact.args):
            image = tuple(mapping[arg] for arg in fact.args)
            if not target.has_tuple(fact.pred, image):
                return False
    return True


def count_homomorphisms(atoms: Iterable[Atom], target: Instance) -> int:
    """Number of homomorphisms (used in tests and benchmarks)."""
    return sum(1 for _ in homomorphisms(atoms, target))
