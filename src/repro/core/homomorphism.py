"""Homomorphism engine.

Homomorphism search is the computational heart of the library: CQ
evaluation, containment, canonical tests, tiling-as-homomorphism and the
pebble-game machinery all reduce to it.  We implement backtracking join
over the atoms of the source pattern with

* per-atom candidate enumeration through the instance's positional index,
* dynamic "fewest candidates first" atom ordering (with a static mode kept
  for the ablation benchmark ABL-HOM), and
* early consistency checks for repeated variables.

Constants map to themselves (standard CQ semantics, §2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.core.atoms import Atom
from repro.core.instance import Instance
from repro.core.terms import Variable, is_variable


def _pattern(atom: Atom, assignment: Mapping) -> list:
    """The match pattern of ``atom`` under the current partial assignment."""
    pattern = []
    for term in atom.args:
        if is_variable(term):
            pattern.append(assignment.get(term))
        else:
            pattern.append(term)
    return pattern


def _bindings_for_row(
    atom: Atom, row: tuple, assignment: Mapping
) -> Optional[dict]:
    """New variable bindings making ``atom`` match ``row``, or None.

    Checks consistency for repeated variables within the atom and against
    the existing assignment.
    """
    new: dict = {}
    for term, value in zip(atom.args, row):
        if is_variable(term):
            bound = assignment.get(term, new.get(term))
            if bound is None:
                new[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return new


def _candidate_count(atom: Atom, target: Instance, assignment: Mapping) -> int:
    return target.count_matching(atom.pred, _pattern(atom, assignment))


def _search(
    atoms: Sequence[Atom],
    target: Instance,
    assignment: dict,
    dynamic: bool,
) -> Iterator[dict]:
    """Yield total assignments extending ``assignment`` over all atoms.

    Iterative backtracking (an explicit frame stack): patterns with
    thousands of atoms — whole-instance homomorphism checks — must not
    hit the Python recursion limit.
    """
    if not atoms:
        yield dict(assignment)
        return

    remaining = list(atoms)

    def pick(pool: list[Atom]) -> Atom:
        if dynamic:
            best = min(
                range(len(pool)),
                key=lambda i: _candidate_count(pool[i], target, assignment),
            )
        else:
            best = 0
        return pool.pop(best)

    # each frame: (atom, row-iterator, bindings-made, rest-pool)
    first = pick(remaining)
    stack = [
        (
            first,
            target.matching(first.pred, _pattern(first, assignment)),
            None,
            remaining,
        )
    ]
    while stack:
        atom, rows, made, pool = stack[-1]
        if made is not None:
            for key in made:
                del assignment[key]
            stack[-1] = (atom, rows, None, pool)
        advanced = False
        for row in rows:
            new = _bindings_for_row(atom, row, assignment)
            if new is None:
                continue
            assignment.update(new)
            if not pool:
                yield dict(assignment)
                for key in new:
                    del assignment[key]
                continue
            stack[-1] = (atom, rows, new, pool)
            rest = list(pool)
            nxt = pick(rest)
            stack.append(
                (
                    nxt,
                    target.matching(nxt.pred, _pattern(nxt, assignment)),
                    None,
                    rest,
                )
            )
            advanced = True
            break
        if not advanced:
            stack.pop()


def _connected_order(atoms: list[Atom], target: Instance) -> list[Atom]:
    """A one-shot join order: cheapest seed, then variable-connected.

    Used for large patterns where per-step candidate counting (dynamic
    ordering) costs more than it saves.
    """
    remaining = list(atoms)
    ordered: list[Atom] = []
    bound: set = set()
    while remaining:
        connected = [
            a for a in remaining if a.variables() & bound
        ] or remaining
        best = min(
            connected,
            key=lambda a: len(target.tuples(a.pred)),
        )
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered


_DYNAMIC_ATOM_LIMIT = 30


def homomorphisms(
    atoms: Iterable[Atom],
    target: Instance,
    fixed: Optional[Mapping[Variable, object]] = None,
    ordering: str = "auto",
) -> Iterator[dict]:
    """All homomorphisms from the atom set into ``target``.

    ``fixed`` pre-binds variables (used to evaluate queries at a given
    tuple and to check rooted mappings).  ``ordering``:

    * ``"dynamic"`` — fewest-candidates-first at every step (best for
      small patterns);
    * ``"static"`` — the given atom order;
    * ``"connected"`` — one-shot connected join order;
    * ``"auto"`` (default) — dynamic below ``_DYNAMIC_ATOM_LIMIT``
      atoms, connected above.
    """
    atom_list = list(atoms)
    if ordering == "auto":
        ordering = (
            "dynamic" if len(atom_list) <= _DYNAMIC_ATOM_LIMIT
            else "connected"
        )
    if ordering == "connected":
        atom_list = _connected_order(atom_list, target)
        ordering = "static"
    assignment: dict = dict(fixed) if fixed else {}
    yield from _search(atom_list, target, assignment, ordering == "dynamic")


def find_homomorphism(
    atoms: Iterable[Atom],
    target: Instance,
    fixed: Optional[Mapping[Variable, object]] = None,
    ordering: str = "auto",
) -> Optional[dict]:
    """The first homomorphism found, or None."""
    return next(homomorphisms(atoms, target, fixed, ordering), None)


def has_homomorphism(
    atoms: Iterable[Atom],
    target: Instance,
    fixed: Optional[Mapping[Variable, object]] = None,
) -> bool:
    """Whether some homomorphism exists."""
    return find_homomorphism(atoms, target, fixed) is not None


def _instance_as_atoms(source: Instance) -> tuple[list[Atom], dict]:
    """View an instance as a pattern: one variable per domain element."""
    var_of = {e: Variable(f"_e{i}") for i, e in enumerate(sorted(
        source.active_domain(), key=repr))}
    pattern = [
        Atom(f.pred, tuple(var_of[a] for a in f.args)) for f in source.facts()
    ]
    return pattern, var_of


def instance_homomorphism(
    source: Instance, target: Instance
) -> Optional[dict]:
    """A homomorphism ``source -> target`` on elements, or None.

    This is the ``I → I'`` relation of §2: every element of the source may
    be renamed (there are no constants-in-data; data elements are
    freely mappable).
    """
    pattern, var_of = _instance_as_atoms(source)
    hom = find_homomorphism(pattern, target)
    if hom is None:
        return None
    return {elem: hom[var] for elem, var in var_of.items()}


def instance_maps_into(source: Instance, target: Instance) -> bool:
    """``source → target`` (§2 notation)."""
    return instance_homomorphism(source, target) is not None


def homomorphically_equivalent(left: Instance, right: Instance) -> bool:
    """Mutual homomorphisms in both directions."""
    return instance_maps_into(left, right) and instance_maps_into(right, left)


def is_partial_homomorphism(
    mapping: Mapping, source: Instance, target: Instance
) -> bool:
    """Check the pebble-game condition (§7).

    ``mapping`` is a partial map on the active domain of ``source``.  The
    condition: whenever all arguments of a source fact lie in the domain
    of ``mapping``, the image fact must be in ``target``.
    """
    dom = set(mapping)
    for fact in source.facts():
        if all(arg in dom for arg in fact.args):
            image = tuple(mapping[arg] for arg in fact.args)
            if not target.has_tuple(fact.pred, image):
                return False
    return True


def count_homomorphisms(atoms: Iterable[Atom], target: Instance) -> int:
    """Number of homomorphisms (used in tests and benchmarks)."""
    return sum(1 for _ in homomorphisms(atoms, target))
