"""Serialization back to the text syntax (inverse of the parser).

Round-trip guarantee (tested): ``parse_program(program_to_text(p))`` is
the same program up to variable names, and
``parse_instance(instance_to_text(i))`` is the same instance, for
instances whose elements are strings or integers.
"""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.terms import is_variable
from repro.core.ucq import UCQ


class UnserializableError(ValueError):
    """Raised for elements the text syntax cannot express."""


def term_to_text(term) -> str:
    if is_variable(term):
        return term.name
    if isinstance(term, bool):
        raise UnserializableError(f"cannot serialize {term!r}")
    if isinstance(term, int):
        return str(term)
    if isinstance(term, str):
        if "'" in term:
            raise UnserializableError(
                f"string constants may not contain quotes: {term!r}"
            )
        return f"'{term}'"
    raise UnserializableError(
        f"only str/int elements serialize to text, got {type(term).__name__}"
    )


import re as _re

_PRED = _re.compile(r"[A-Z]\w*\Z")
_VAR = _re.compile(r"[a-z_]\w*\Z")


def atom_to_text(atom: Atom) -> str:
    if not _PRED.match(atom.pred):
        raise UnserializableError(
            f"predicate {atom.pred!r} is outside the text syntax "
            "(generated programs with decorated names don't round-trip)"
        )
    for term in atom.args:
        if is_variable(term) and not _VAR.match(term.name):
            raise UnserializableError(
                f"variable {term!r} is outside the text syntax"
            )
    inner = ", ".join(term_to_text(t) for t in atom.args)
    return f"{atom.pred}({inner})"


def rule_to_text(rule: Rule) -> str:
    head = atom_to_text(rule.head)
    if not rule.body:
        return f"{head}."
    body = ", ".join(atom_to_text(a) for a in rule.body)
    return f"{head} <- {body}."


def program_to_text(program: DatalogProgram) -> str:
    return "\n".join(rule_to_text(r) for r in program.rules)


def query_to_text(query: DatalogQuery) -> str:
    """Serialize with the CLI's ``# goal:`` directive."""
    return f"# goal: {query.goal}\n{program_to_text(query.program)}"


def cq_to_text(cq: ConjunctiveQuery, head_name: str = "Q") -> str:
    head = Atom(head_name, cq.head_vars)
    return rule_to_text(Rule(head, cq.atoms))


def ucq_to_text(ucq: UCQ, head_name: str = "Q") -> str:
    return "\n".join(cq_to_text(d, head_name) for d in ucq.disjuncts)


def instance_to_text(instance: Instance) -> str:
    lines = []
    for fact in sorted(instance.facts(), key=repr):
        lines.append(atom_to_text(fact) + ".")
    return "\n".join(lines)
