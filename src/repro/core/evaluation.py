"""Fixpoint evaluation of Datalog programs (``FPEval``, §2).

Three strategies:

* :func:`naive_fixpoint` — re-derives everything each round (kept for the
  ABL-EVAL ablation benchmark and as a correctness oracle in tests).
* :func:`seminaive_fixpoint` — each round only considers rule
  instantiations using at least one *newly derived* IDB fact, via
  delta-rule rewriting of each rule body.
* :func:`stratified_fixpoint` — the production strategy: the SCC
  condensation of the predicate dependency graph (from
  :mod:`repro.analysis.dependency`) is evaluated one component at a
  time, dependencies first.  Within a component the semi-naive engine
  runs with *only that component's* predicates delta-tracked: rules
  reading already-finished components join against their complete
  relations exactly once instead of re-firing on every global round.

Semi-naive evaluation resolves each delta rule's join plan **once** per
fixpoint call and replays it on every subsequent round (the plan is
keyed by rule and delta position; any join order is correct, so reusing
one planned against an earlier state is sound).  Pass
``stats=EngineStats()`` to count rounds, derived facts and plan-cache
traffic.

All strategies return the minimal IDB-extension of the input instance
satisfying the program, i.e. ``FPEval(Π, I)`` including the original
EDB facts.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Optional, Sequence

from repro.core import stats as _stats
from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, Rule
from repro.core.homomorphism import (
    _bindings_for_row,
    _pattern,
    homomorphisms,
    resolve_plan,
)
from repro.core.instance import Instance
from repro.core.stats import EngineStats

#: ambient default for ``fixpoint(..., optimize=None)``; flipped by
#: :func:`set_default_optimize` (e.g. in harness worker processes) so
#: existing call sites opt in without changing their signatures.
_DEFAULT_OPTIMIZE = False


def set_default_optimize(value: bool) -> bool:
    """Set the ambient default for ``optimize=None``; returns the
    previous value so callers can restore it."""
    global _DEFAULT_OPTIMIZE
    previous = _DEFAULT_OPTIMIZE
    _DEFAULT_OPTIMIZE = bool(value)
    return previous


def default_optimize() -> bool:
    """The current ambient optimization default."""
    return _DEFAULT_OPTIMIZE


#: optional audit hook called after every :func:`fixpoint` with the
#: program *actually evaluated* (post-optimization), the input instance,
#: the result and the caller's stats collector.  Installed by
#: :func:`repro.analysis.cost.cost_checking` to re-validate predicted
#: cardinality bounds against measured relation sizes (``--check-cost``).
_COST_GUARD = None


def set_cost_guard(guard):
    """Install (or clear, with None) the post-fixpoint audit hook;
    returns the previous hook so callers can restore it."""
    global _COST_GUARD
    previous = _COST_GUARD
    _COST_GUARD = guard
    return previous


def _rule_derivations(
    rule: Rule, instance: Instance, ordering: str = "auto"
) -> Iterator[Atom]:
    """All head facts derivable from ``rule`` against ``instance``."""
    if not rule.body:
        yield rule.head
        return
    # An empty body relation means no match: skip the join outright
    # (frequent in round 0, where recursive rules read their own
    # still-empty predicate).
    if any(instance.size(atom.pred) == 0 for atom in rule.body):
        return
    if len(rule.body) == 1:
        # Projection fast path: a single-atom body needs no join plan or
        # search stack, just one scan of the relation (the same direct
        # read the semi-naive delta seeding performs).
        atom = rule.body[0]
        for row in instance.matching(atom.pred, _pattern(atom, {})):
            bound = _bindings_for_row(atom, row, {})
            if bound is not None:
                yield rule.head.substitute(bound)
        return
    for hom in homomorphisms(rule.body, instance, ordering=ordering):
        yield rule.head.substitute(hom)


def naive_fixpoint(
    program: DatalogProgram,
    instance: Instance,
    stats: Optional[EngineStats] = None,
    ordering: str = "auto",
) -> Instance:
    """Round-based naive evaluation (the correctness oracle)."""
    with _stats.maybe_collecting(stats):
        collector = _stats.active()
        state = instance.copy()
        changed = True
        while changed:
            if collector is not None:
                collector.fixpoint_rounds += 1
            derived = [
                fact
                for rule in program.rules
                for fact in _rule_derivations(rule, state, ordering)
            ]
            changed = False
            for fact in derived:
                if state.add(fact):
                    changed = True
                    if collector is not None:
                        collector.facts_derived += 1
        return state


class _PlanCache:
    """Resolved join orders, keyed per (rule, delta position, strategy).

    Semi-naive rounds evaluate the *same* delta rules against a growing
    state; the ordering decision (and, for large bodies, the connected
    join order itself) is identical work each round, so it is resolved
    once and replayed.  A cached order planned against an earlier state
    remains correct — join order never affects the answer set, only the
    search cost — and the planning inputs (relation cardinalities) only
    grow monotonically during a fixpoint, which keeps the relative
    selectivities representative.
    """

    __slots__ = ("_plans", "_stats", "_default")

    def __init__(
        self, collector: Optional[EngineStats], default: str = "auto"
    ) -> None:
        self._plans: dict[tuple, tuple[list[Atom], str]] = {}
        self._stats = collector
        self._default = default

    def ordering_for(
        self, key: tuple, atoms: list[Atom], target: Instance
    ) -> tuple[list[Atom], str]:
        """The (ordered atoms, replay ordering) for a cached join."""
        plan = self._plans.get(key)
        if plan is None:
            if self._default == "static":
                # the statically planned body order is the plan: replay
                # it as-is instead of re-planning at runtime
                plan = (list(atoms), "static")
            else:
                ordered, dynamic = resolve_plan(atoms, target, self._default)
                plan = (ordered, "dynamic" if dynamic else "static")
            self._plans[key] = plan
            if self._stats is not None:
                self._stats.plan_cache_misses += 1
        elif self._stats is not None:
            self._stats.plan_cache_hits += 1
        return plan


def _delta_derivations(
    rule: Rule,
    state: Instance,
    delta: Instance,
    idb: frozenset[str] | set[str],
    rule_key: int,
    plans: _PlanCache,
    delta_patterns: list,
) -> Iterator[Atom]:
    """Derivations of ``rule`` using >=1 delta fact for some IDB body atom.

    For each IDB body atom position ``i`` we seed the join with the delta
    facts at that atom and match the remaining atoms against the full
    state.  This enumerates every instantiation touching the delta (a
    superset-free cover is not needed; duplicates are deduplicated by the
    caller's ``Instance.add``).
    """
    body = rule.body
    for i, atom in enumerate(body):
        if atom.pred not in idb:
            continue
        rest = body[:i] + body[i + 1:]
        pattern = delta_patterns[i]
        ordered, ordering = plans.ordering_for((rule_key, i), rest, state)
        for row in delta.matching(atom.pred, pattern):
            seed = _bindings_for_row(atom, row, {})
            if seed is None:
                continue
            for hom in homomorphisms(
                ordered, state, fixed=seed, ordering=ordering
            ):
                yield rule.head.substitute(hom)


def _seminaive_in_place(
    rules: Sequence[Rule],
    keys: Sequence[int],
    state: Instance,
    tracked: frozenset[str] | set[str],
    plans: _PlanCache,
    delta_patterns: list,
    collector: Optional[EngineStats],
    prelude: Sequence[Rule] = (),
    ordering: str = "auto",
) -> None:
    """Run the given rules to fixpoint, mutating ``state`` in place.

    ``tracked`` is the set of predicates whose facts participate in
    delta propagation — the whole IDB signature for plain semi-naive
    evaluation, or one SCC's predicates for a stratum.  Rules whose
    bodies never read a tracked predicate fire exactly once (round 0 on
    the complete current state) and the delta loop is skipped entirely
    when no rule is recursive under ``tracked``.

    ``prelude`` rules (a dependency-ordered block of non-recursive
    rules feeding this stratum) fire exactly once at the start of round
    0, eagerly, so they do not cost a round of their own.
    """
    # Round 0: every rule fires on the current state.
    delta = Instance()
    if collector is not None:
        collector.fixpoint_rounds += 1
    for rule in prelude:
        derived = list(_rule_derivations(rule, state, ordering))
        added = 0
        for fact in derived:
            if state.add(fact):
                added += 1
        if collector is not None:
            collector.facts_derived += added
    for rule in rules:
        for fact in _rule_derivations(rule, state, ordering):
            if fact not in state:
                delta.add(fact)
    state.update(delta.facts())
    if collector is not None:
        collector.facts_derived += len(delta)

    recursive = [
        (key, rule)
        for key, rule in zip(keys, rules)
        if any(a.pred in tracked for a in rule.body)
    ]
    while len(delta) and recursive:
        if collector is not None:
            collector.fixpoint_rounds += 1
        fresh = Instance()
        for key, rule in recursive:
            for fact in _delta_derivations(
                rule, state, delta, tracked, key, plans, delta_patterns[key]
            ):
                if fact not in state and fact not in fresh:
                    fresh.add(fact)
        state.update(fresh.facts())
        if collector is not None:
            collector.facts_derived += len(fresh)
        delta = fresh


def _program_delta_patterns(program: DatalogProgram) -> list:
    """Per rule: the empty-assignment match pattern of each body atom
    (constants + ANY wildcards), computed once instead of per round."""
    return [
        [_pattern(atom, {}) for atom in rule.body]
        for rule in program.rules
    ]


def seminaive_fixpoint(
    program: DatalogProgram,
    instance: Instance,
    stats: Optional[EngineStats] = None,
    ordering: str = "auto",
) -> Instance:
    """Semi-naive evaluation with per-round deltas and cached plans."""
    with _stats.maybe_collecting(stats):
        collector = _stats.active()
        state = instance.copy()
        _seminaive_in_place(
            program.rules,
            range(len(program.rules)),
            state,
            program.idb_predicates(),
            _PlanCache(collector, ordering),
            _program_delta_patterns(program),
            collector,
            ordering=ordering,
        )
        return state


@lru_cache(maxsize=512)
def _execution_plan(program: DatalogProgram) -> tuple:
    """The stratified engine's schedule, computed once per program.

    Greedy readiness scheduling over the SCC condensation: each step
    pairs a dependency-ordered *batch* of ready non-recursive components
    (fired eagerly, one pass) with the *group* of recursive components
    whose dependencies are then all complete.  Ready recursive
    components are pairwise independent by construction (a dependency
    between them would make the dependent one un-ready), so the group
    iterates as one semi-naive loop whose round count is the maximum —
    not the sum — of the members' depths.

    Returns ``((prelude_rules, group_rules, group_keys, tracked), ...)``
    with ``group_rules`` empty for pure-batch steps.
    """
    from repro.analysis.dependency import DependencyGraph

    graph = DependencyGraph(program)
    idb = graph.idb

    def dependencies(scc) -> set[str]:
        return {
            atom.pred
            for rule in scc.rules
            for atom in rule.body
            if atom.pred in idb and atom.pred not in scc.predicates
        }

    remaining = list(graph.sccs)
    done: set[str] = set()
    plan = []
    while remaining:
        batch: list = []
        batch_preds: set[str] = set()
        group: list = []
        later = []
        for scc in remaining:  # topological order: deps scanned first
            if dependencies(scc) <= done | batch_preds:
                if scc.recursive:
                    group.append(scc)
                else:
                    batch.append(scc)
                    batch_preds |= scc.predicates
            else:
                later.append(scc)
        prelude = tuple(rule for scc in batch for rule in scc.rules)
        group_rules = tuple(rule for scc in group for rule in scc.rules)
        group_keys = tuple(key for scc in group for key in scc.rule_indices)
        tracked = frozenset().union(*(scc.predicates for scc in group)) \
            if group else frozenset()
        plan.append((prelude, group_rules, group_keys, tracked))
        done |= batch_preds | tracked
        remaining = later
    return tuple(plan)


def _single_pass(
    rules: Sequence[Rule],
    state: Instance,
    collector: Optional[EngineStats],
    ordering: str = "auto",
) -> None:
    """Fire each rule exactly once, in order, applying facts eagerly.

    Correct for a dependency-ordered run of *non-recursive* components:
    every body predicate of a rule is either extensional or fully
    computed by the time the rule fires, so one pass reaches the
    fixpoint of this rule block — one round, no delta machinery.
    """
    if collector is not None:
        collector.fixpoint_rounds += 1
    for rule in rules:
        derived = list(_rule_derivations(rule, state, ordering))
        added = 0
        for fact in derived:
            if state.add(fact):
                added += 1
        if collector is not None:
            collector.facts_derived += added


def stratified_fixpoint(
    program: DatalogProgram,
    instance: Instance,
    stats: Optional[EngineStats] = None,
    ordering: str = "auto",
) -> Instance:
    """SCC-stratified semi-naive evaluation (the default strategy).

    Components of the predicate dependency graph are evaluated
    dependencies-first; each component's rules run to fixpoint with only
    that component's predicates delta-tracked.  Rules of later
    components never fire during earlier ones, and finished components
    are joined as if they were EDB relations.  Equivalent to
    :func:`seminaive_fixpoint` (see the engine-equivalence property
    tests) with strictly less re-derivation work on multi-component
    programs.
    """
    with _stats.maybe_collecting(stats):
        collector = _stats.active()
        state = instance.copy()
        plans = _PlanCache(collector, ordering)
        delta_patterns = _program_delta_patterns(program)
        for prelude, rules, keys, tracked in _execution_plan(program):
            if rules:
                _seminaive_in_place(
                    rules,
                    keys,
                    state,
                    tracked,
                    plans,
                    delta_patterns,
                    collector,
                    prelude=prelude,
                    ordering=ordering,
                )
            elif prelude:
                _single_pass(prelude, state, collector, ordering)
        return state


@lru_cache(maxsize=512)
def goal_directed_program(program: DatalogProgram, goal: str) -> DatalogProgram:
    """The subprogram of rules the goal transitively depends on.

    Evaluating it yields the same goal relation as the full program
    (dropped rules only populate predicates the goal never reads), so
    :meth:`DatalogQuery.evaluate` uses this as its entry point.  Cached:
    programs are immutable and re-evaluated many times per decision
    procedure.  A goal that is not an IDB head of ``program`` (e.g.
    defined only via views) keeps the program unchanged instead of
    pruning it down to nothing.
    """
    from repro.analysis.dependency import DependencyGraph

    return DependencyGraph(program).prune_unreachable(goal)


def fixpoint(
    program: DatalogProgram,
    instance: Instance,
    strategy: str = "stratified",
    stats: Optional[EngineStats] = None,
    optimize: Optional[bool] = None,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
) -> Instance:
    """``FPEval(Π, I)`` with a selectable strategy and backend.

    ``optimize=True`` (or an ambient :func:`set_default_optimize`
    default with ``optimize=None``) first applies the *universally
    sound* optimizer passes — body minimization, subsumed-rule removal
    and static join reordering against this instance's cardinalities
    (:mod:`repro.analysis.optimize`) — and then evaluates with
    ``ordering="static"``, replaying the planned body orders instead of
    replanning joins at runtime.  These passes preserve every IDB
    relation on every instance; the goal-directed passes (magic sets,
    inlining) need a goal predicate and live in
    :meth:`repro.core.datalog.DatalogQuery.evaluate`.

    ``backend`` names the evaluation engine (``None`` → the ambient
    :func:`repro.core.backend.default_backend`).  The optimizer passes
    are backend-independent program transforms, so they compose with
    every backend; only the ``ordering`` hint is interpreted-specific.

    ``shards=N`` (or an ambient
    :func:`repro.core.shard.set_default_shards` default with
    ``shards=None``) evaluates through the sharded parallel executor
    planned by :func:`repro.analysis.shard.shard_report` — hash-
    partitioned worker processes per stratum where the plan proves it
    communication-free, delta exchange where it does not.  Instances
    below the executor's size gate stay on the plain path, so the
    ambient default is safe to leave on.
    """
    from repro.core.backend import resolve_backend

    if optimize is None:
        optimize = _DEFAULT_OPTIMIZE
    ordering = "auto"
    if optimize:
        from repro.analysis.optimize import (
            OPTIMIZE_RULE_LIMIT,
            reorder_joins,
            syntactic_fixpoint_program,
        )

        if len(program.rules) <= OPTIMIZE_RULE_LIMIT:
            from repro.core.stats import suspended

            # the optimizer's subsumption checks are analysis, not
            # evaluation: keep them out of the caller's counters
            with suspended():
                program = reorder_joins(
                    syntactic_fixpoint_program(program), instance
                )
            ordering = "static"
    if shards is None:
        from repro.core.shard import default_shards

        shards = default_shards()
    if shards and shards > 1:
        from repro.core.shard import sharded_fixpoint

        result = sharded_fixpoint(
            program, instance, shards, strategy=strategy, stats=stats,
            ordering=ordering, backend=backend,
        )
    else:
        result = resolve_backend(backend).fixpoint(
            program, instance, strategy=strategy, stats=stats,
            ordering=ordering,
        )
    if _COST_GUARD is not None:
        _COST_GUARD(program, instance, result, stats=stats)
    return result


def idb_facts(program: DatalogProgram, instance: Instance) -> Instance:
    """Only the derived IDB facts of the fixpoint."""
    full = fixpoint(program, instance)
    return full.restrict(program.idb_predicates())
