"""Fixpoint evaluation of Datalog programs (``FPEval``, §2).

Two strategies:

* :func:`naive_fixpoint` — re-derives everything each round (kept for the
  ABL-EVAL ablation benchmark and as a correctness oracle in tests).
* :func:`seminaive_fixpoint` — the production strategy: each round only
  considers rule instantiations using at least one *newly derived* IDB
  fact, via delta-rule rewriting of each rule body.

Semi-naive evaluation resolves each delta rule's join plan **once** per
fixpoint call and replays it on every subsequent round (the plan is
keyed by rule and delta position; any join order is correct, so reusing
one planned against an earlier state is sound).  Pass
``stats=EngineStats()`` to count rounds, derived facts and plan-cache
traffic.

Both strategies return the minimal IDB-extension of the input instance
satisfying the program, i.e. ``FPEval(Π, I)`` including the original
EDB facts.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core import stats as _stats
from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, Rule
from repro.core.homomorphism import (
    _bindings_for_row,
    _pattern,
    homomorphisms,
    resolve_plan,
)
from repro.core.instance import Instance
from repro.core.stats import EngineStats


def _rule_derivations(rule: Rule, instance: Instance) -> Iterator[Atom]:
    """All head facts derivable from ``rule`` against ``instance``."""
    if not rule.body:
        yield rule.head
        return
    for hom in homomorphisms(rule.body, instance):
        yield rule.head.substitute(hom)


def naive_fixpoint(
    program: DatalogProgram,
    instance: Instance,
    stats: Optional[EngineStats] = None,
) -> Instance:
    """Round-based naive evaluation (the correctness oracle)."""
    with _stats.maybe_collecting(stats):
        collector = _stats.active()
        state = instance.copy()
        changed = True
        while changed:
            if collector is not None:
                collector.fixpoint_rounds += 1
            derived = [
                fact
                for rule in program.rules
                for fact in _rule_derivations(rule, state)
            ]
            changed = False
            for fact in derived:
                if state.add(fact):
                    changed = True
                    if collector is not None:
                        collector.facts_derived += 1
        return state


class _PlanCache:
    """Resolved join orders, keyed per (rule, delta position, strategy).

    Semi-naive rounds evaluate the *same* delta rules against a growing
    state; the ordering decision (and, for large bodies, the connected
    join order itself) is identical work each round, so it is resolved
    once and replayed.  A cached order planned against an earlier state
    remains correct — join order never affects the answer set, only the
    search cost — and the planning inputs (relation cardinalities) only
    grow monotonically during a fixpoint, which keeps the relative
    selectivities representative.
    """

    __slots__ = ("_plans", "_stats")

    def __init__(self, collector: Optional[EngineStats]) -> None:
        self._plans: dict[tuple, tuple[list[Atom], str]] = {}
        self._stats = collector

    def ordering_for(
        self, key: tuple, atoms: list[Atom], target: Instance
    ) -> tuple[list[Atom], str]:
        """The (ordered atoms, replay ordering) for a cached join."""
        plan = self._plans.get(key)
        if plan is None:
            ordered, dynamic = resolve_plan(atoms, target, "auto")
            plan = (ordered, "dynamic" if dynamic else "static")
            self._plans[key] = plan
            if self._stats is not None:
                self._stats.plan_cache_misses += 1
        elif self._stats is not None:
            self._stats.plan_cache_hits += 1
        return plan


def _delta_derivations(
    rule: Rule,
    state: Instance,
    delta: Instance,
    idb: set[str],
    rule_key: int,
    plans: _PlanCache,
    delta_patterns: list,
) -> Iterator[Atom]:
    """Derivations of ``rule`` using >=1 delta fact for some IDB body atom.

    For each IDB body atom position ``i`` we seed the join with the delta
    facts at that atom and match the remaining atoms against the full
    state.  This enumerates every instantiation touching the delta (a
    superset-free cover is not needed; duplicates are deduplicated by the
    caller's ``Instance.add``).
    """
    body = rule.body
    for i, atom in enumerate(body):
        if atom.pred not in idb:
            continue
        rest = body[:i] + body[i + 1:]
        pattern = delta_patterns[i]
        ordered, ordering = plans.ordering_for((rule_key, i), rest, state)
        for row in delta.matching(atom.pred, pattern):
            seed = _bindings_for_row(atom, row, {})
            if seed is None:
                continue
            for hom in homomorphisms(
                ordered, state, fixed=seed, ordering=ordering
            ):
                yield rule.head.substitute(hom)


def seminaive_fixpoint(
    program: DatalogProgram,
    instance: Instance,
    stats: Optional[EngineStats] = None,
) -> Instance:
    """Semi-naive evaluation with per-round deltas and cached plans."""
    with _stats.maybe_collecting(stats):
        collector = _stats.active()
        idb = program.idb_predicates()
        state = instance.copy()
        plans = _PlanCache(collector)
        # Per rule: the empty-assignment match pattern of each body atom
        # (constants + ANY wildcards), computed once instead of per round.
        delta_patterns = [
            [_pattern(atom, {}) for atom in rule.body]
            for rule in program.rules
        ]
        recursive = [
            (key, rule)
            for key, rule in enumerate(program.rules)
            if any(a.pred in idb for a in rule.body)
        ]

        # Round 0: rules fire on the EDB alone (plus unconditional facts).
        delta = Instance()
        if collector is not None:
            collector.fixpoint_rounds += 1
        for rule in program.rules:
            for fact in _rule_derivations(rule, state):
                if fact not in state:
                    delta.add(fact)
        state.update(delta.facts())
        if collector is not None:
            collector.facts_derived += len(delta)

        while len(delta):
            if collector is not None:
                collector.fixpoint_rounds += 1
            fresh = Instance()
            for key, rule in recursive:
                for fact in _delta_derivations(
                    rule, state, delta, idb, key, plans, delta_patterns[key]
                ):
                    if fact not in state and fact not in fresh:
                        fresh.add(fact)
            state.update(fresh.facts())
            if collector is not None:
                collector.facts_derived += len(fresh)
            delta = fresh
        return state


def fixpoint(
    program: DatalogProgram,
    instance: Instance,
    strategy: str = "seminaive",
    stats: Optional[EngineStats] = None,
) -> Instance:
    """``FPEval(Π, I)`` with a selectable strategy."""
    if strategy == "seminaive":
        return seminaive_fixpoint(program, instance, stats)
    if strategy == "naive":
        return naive_fixpoint(program, instance, stats)
    raise ValueError(f"unknown strategy {strategy!r}")


def idb_facts(program: DatalogProgram, instance: Instance) -> Instance:
    """Only the derived IDB facts of the fixpoint."""
    full = fixpoint(program, instance)
    return full.restrict(program.idb_predicates())
