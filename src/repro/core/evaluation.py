"""Fixpoint evaluation of Datalog programs (``FPEval``, §2).

Two strategies:

* :func:`naive_fixpoint` — re-derives everything each round (kept for the
  ABL-EVAL ablation benchmark and as a correctness oracle in tests).
* :func:`seminaive_fixpoint` — the production strategy: each round only
  considers rule instantiations using at least one *newly derived* IDB
  fact, via delta-rule rewriting of each rule body.

Both return the minimal IDB-extension of the input instance satisfying
the program, i.e. ``FPEval(Π, I)`` including the original EDB facts.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, Rule
from repro.core.homomorphism import _bindings_for_row, _pattern, homomorphisms
from repro.core.instance import Instance


def _rule_derivations(rule: Rule, instance: Instance) -> Iterator[Atom]:
    """All head facts derivable from ``rule`` against ``instance``."""
    if not rule.body:
        yield rule.head
        return
    for hom in homomorphisms(rule.body, instance):
        yield rule.head.substitute(hom)


def naive_fixpoint(program: DatalogProgram, instance: Instance) -> Instance:
    """Round-based naive evaluation."""
    state = instance.copy()
    changed = True
    while changed:
        derived = [
            fact
            for rule in program.rules
            for fact in _rule_derivations(rule, state)
        ]
        changed = False
        for fact in derived:
            if state.add(fact):
                changed = True
    return state


def _delta_derivations(
    rule: Rule,
    state: Instance,
    delta: Instance,
    idb: set[str],
) -> Iterator[Atom]:
    """Derivations of ``rule`` using >=1 delta fact for some IDB body atom.

    For each IDB body atom position ``i`` we seed the join with the delta
    facts at that atom and match the remaining atoms against the full
    state.  This enumerates every instantiation touching the delta (a
    superset-free cover is not needed; duplicates are deduplicated by the
    caller's ``Instance.add``).
    """
    body = rule.body
    for i, atom in enumerate(body):
        if atom.pred not in idb:
            continue
        rest = body[:i] + body[i + 1:]
        for row in delta.matching(atom.pred, _pattern(atom, {})):
            seed = _bindings_for_row(atom, row, {})
            if seed is None:
                continue
            for hom in homomorphisms(rest, state, fixed=seed):
                yield rule.head.substitute(hom)


def seminaive_fixpoint(program: DatalogProgram, instance: Instance) -> Instance:
    """Semi-naive evaluation with per-round deltas."""
    idb = program.idb_predicates()
    state = instance.copy()

    # Round 0: rules fire on the EDB alone (plus unconditional facts).
    delta = Instance()
    for rule in program.rules:
        for fact in _rule_derivations(rule, state):
            if fact not in state:
                delta.add(fact)
    state.update(delta.facts())

    while len(delta):
        fresh = Instance()
        for rule in program.rules:
            if not any(a.pred in idb for a in rule.body):
                continue  # cannot use new IDB facts
            for fact in _delta_derivations(rule, state, delta, idb):
                if fact not in state and fact not in fresh:
                    fresh.add(fact)
        state.update(fresh.facts())
        delta = fresh
    return state


def fixpoint(
    program: DatalogProgram, instance: Instance, strategy: str = "seminaive"
) -> Instance:
    """``FPEval(Π, I)`` with a selectable strategy."""
    if strategy == "seminaive":
        return seminaive_fixpoint(program, instance)
    if strategy == "naive":
        return naive_fixpoint(program, instance)
    raise ValueError(f"unknown strategy {strategy!r}")


def idb_facts(program: DatalogProgram, instance: Instance) -> Instance:
    """Only the derived IDB facts of the fixpoint."""
    full = fixpoint(program, instance)
    return full.restrict(program.idb_predicates())
