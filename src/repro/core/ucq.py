"""Unions of conjunctive queries.

A :class:`UCQ` is a finite disjunction of CQs of the same arity.  The
Sagiv–Yannakakis criterion gives containment: ``⋃Qi ⊑ ⋃Pj`` iff every
``Qi`` is contained in some ``Pj``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.cq import ConjunctiveQuery
from repro.core.instance import Instance


@dataclass(frozen=True)
class UCQ:
    """A union (disjunction) of conjunctive queries of equal arity."""

    disjuncts: tuple[ConjunctiveQuery, ...]
    name: str = "Q"

    def __init__(
        self, disjuncts: Iterable[ConjunctiveQuery], name: str = "Q"
    ) -> None:
        ds = tuple(disjuncts)
        if not ds:
            raise ValueError("UCQ needs at least one disjunct")
        arities = {d.arity for d in ds}
        if len(arities) != 1:
            raise ValueError(f"mixed arities in UCQ: {arities}")
        object.__setattr__(self, "disjuncts", ds)
        object.__setattr__(self, "name", name)

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def is_boolean(self) -> bool:
        return self.arity == 0

    def predicates(self) -> set[str]:
        out: set[str] = set()
        for d in self.disjuncts:
            out |= d.predicates()
        return out

    def evaluate(self, instance: Instance) -> set[tuple]:
        answers: set[tuple] = set()
        for d in self.disjuncts:
            answers |= d.evaluate(instance)
        return answers

    def holds(self, instance: Instance, answer: Sequence = ()) -> bool:
        return any(d.holds(instance, answer) for d in self.disjuncts)

    def boolean(self, instance: Instance) -> bool:
        return any(d.boolean(instance) for d in self.disjuncts)

    def is_contained_in(self, other: "UCQ") -> bool:
        """Sagiv–Yannakakis: each disjunct contained in some disjunct."""
        return all(
            any(d.is_contained_in(p) for p in other.disjuncts)
            for d in self.disjuncts
        )

    def is_equivalent_to(self, other: "UCQ") -> bool:
        return self.is_contained_in(other) and other.is_contained_in(self)

    def simplify(self) -> "UCQ":
        """Drop disjuncts subsumed by another disjunct."""
        kept: list[ConjunctiveQuery] = []
        for i, d in enumerate(self.disjuncts):
            subsumed = False
            for j, other in enumerate(self.disjuncts):
                if i == j:
                    continue
                if d.is_contained_in(other) and not (
                    other.is_contained_in(d) and j > i
                ):
                    if not other.is_contained_in(d) or j < i:
                        subsumed = True
                        break
            if not subsumed:
                kept.append(d)
        return UCQ(kept, self.name)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return " ∨ ".join(map(repr, self.disjuncts))


def as_ucq(query) -> UCQ:
    """Coerce a CQ or UCQ to a UCQ."""
    if isinstance(query, UCQ):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UCQ((query,), query.name)
    raise TypeError(f"cannot coerce {type(query).__name__} to UCQ")
