"""Datalog program optimization.

Generated programs (inverse rules, backward mappings, folded programs)
carry redundancy: subsumed rules, redundant body atoms, unreachable
IDBs.  The passes here shrink them while provably preserving the query:

* :func:`minimize_rule_bodies` — per-rule body minimization (drop atoms
  whose removal keeps the rule equivalent, the CQ-core idea lifted to
  rules with a frozen head);
* :func:`drop_subsumed_rules` — remove rules subsumed by another rule
  for the same head;
* :func:`reachable_rules` — keep only rules contributing to the goal;
* :func:`optimize_query` — the composed pipeline.

Rule subsumption here is the sound syntactic one (treating IDB body
atoms as opaque): rule ``r`` subsumes ``r'`` when there is a
homomorphism from ``r``'s body to ``r'``'s body fixing the head — then
everything ``r'`` derives, ``r`` derives, over every IDB extension.
"""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.cq import CanonConst
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.homomorphism import has_homomorphism
from repro.core.instance import Instance
from repro.core.terms import Variable, is_variable


def _freeze(term):
    return CanonConst(term.name) if isinstance(term, Variable) else term


def _body_instance(rule: Rule) -> Instance:
    return Instance(
        Atom(a.pred, tuple(_freeze(t) for t in a.args)) for a in rule.body
    )


def rule_subsumes(general: Rule, specific: Rule) -> bool:
    """Whether ``general`` derives everything ``specific`` does.

    Sound test: a homomorphism from ``general``'s body into the frozen
    body of ``specific`` that maps the head atoms identically.
    """
    if general.head.pred != specific.head.pred:
        return False
    if general.head.arity != specific.head.arity:
        return False
    fixed = {}
    for g_term, s_term in zip(general.head.args, specific.head.args):
        if is_variable(g_term):
            target = _freeze(s_term)
            if fixed.get(g_term, target) != target:
                return False
            fixed[g_term] = target
        elif g_term != s_term:
            return False
    return has_homomorphism(general.body, _body_instance(specific), fixed)


def minimize_rule_bodies(program: DatalogProgram) -> DatalogProgram:
    """Drop body atoms whose removal keeps the rule self-subsuming."""
    new_rules = []
    for rule in program.rules:
        body = list(rule.body)
        changed = True
        while changed:
            changed = False
            for index in range(len(body)):
                candidate_body = body[:index] + body[index + 1:]
                vars_left = set()
                for atom in candidate_body:
                    vars_left |= atom.variables()
                if not rule.head.variables() <= vars_left:
                    continue
                candidate = Rule(rule.head, tuple(candidate_body))
                if rule_subsumes(candidate, rule) and rule_subsumes(
                    rule, candidate
                ):
                    body = candidate_body
                    changed = True
                    break
        new_rules.append(Rule(rule.head, tuple(body)))
    return DatalogProgram(tuple(new_rules))


def drop_subsumed_rules(program: DatalogProgram) -> DatalogProgram:
    """Remove rules subsumed by another rule of the program."""
    kept: list[Rule] = []
    for rule in program.rules:
        if any(rule_subsumes(existing, rule) for existing in kept):
            continue
        kept = [
            existing
            for existing in kept
            if not rule_subsumes(rule, existing)
        ]
        kept.append(rule)
    return DatalogProgram(tuple(kept))


def reachable_rules(query: DatalogQuery) -> DatalogQuery:
    """Keep only rules whose head is reachable from the goal.

    Delegates to the dependency-graph analysis (lazy import: the
    analysis package builds on this module's subsumption helpers).
    """
    from repro.analysis.dependency import prune_unreachable

    return prune_unreachable(query)


def optimize_query(query: DatalogQuery) -> DatalogQuery:
    """Reachability pruning + body minimization + rule subsumption."""
    pruned = reachable_rules(query)
    minimized = minimize_rule_bodies(pruned.program)
    slim = drop_subsumed_rules(minimized)
    return DatalogQuery(slim, query.goal, query.name)
