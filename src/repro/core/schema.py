"""Relational schemas.

A :class:`Schema` maps relation names to arities (§2 of the paper).  Most
of the library infers schemas from data, but decision procedures that need
to distinguish *base* from *view* signatures (``Σ_B`` vs ``Σ_V``) carry
explicit schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core.atoms import Atom


@dataclass(frozen=True)
class Schema:
    """An immutable map from relation name to arity."""

    relations: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "relations", dict(self.relations))

    def arity(self, pred: str) -> int:
        return self.relations[pred]

    def __contains__(self, pred: str) -> bool:
        return pred in self.relations

    def __iter__(self) -> Iterator[str]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def names(self) -> set[str]:
        return set(self.relations)

    def union(self, other: "Schema") -> "Schema":
        """Union of two schemas; arities must agree on shared names."""
        merged = dict(self.relations)
        for name, arity in other.relations.items():
            if merged.get(name, arity) != arity:
                raise ValueError(
                    f"arity clash for {name}: {merged[name]} vs {arity}"
                )
            merged[name] = arity
        return Schema(merged)

    def restrict(self, names: Iterable[str]) -> "Schema":
        """The sub-schema containing only the given relation names."""
        keep = set(names)
        return Schema({n: a for n, a in self.relations.items() if n in keep})

    @staticmethod
    def from_atoms(atoms: Iterable[Atom]) -> "Schema":
        """Infer a schema from atoms; raises on inconsistent arities."""
        rels: dict[str, int] = {}
        for atom in atoms:
            seen = rels.get(atom.pred)
            if seen is None:
                rels[atom.pred] = atom.arity
            elif seen != atom.arity:
                raise ValueError(
                    f"inconsistent arity for {atom.pred}: {seen} vs {atom.arity}"
                )
        return Schema(rels)

    def check(self, atom: Atom) -> None:
        """Raise if ``atom`` does not conform to this schema."""
        if atom.pred not in self.relations:
            raise ValueError(f"unknown relation {atom.pred}")
        if self.relations[atom.pred] != atom.arity:
            raise ValueError(
                f"{atom.pred} has arity {self.relations[atom.pred]}, "
                f"got {atom.arity}"
            )
