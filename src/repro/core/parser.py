"""A small text syntax for rules, queries and instances.

Grammar (whitespace-insensitive)::

    program  := rule*
    rule     := atom ("<-" | ":-") atomlist "."?   |  atom "."?
    atom     := PRED "(" termlist? ")"
    term     := VARIABLE | CONSTANT | NUMBER | STRING

Conventions: predicate names start with an upper-case letter; bare
lower-case identifiers are variables; numbers, single-quoted strings and
identifiers starting with ``$`` are constants.  Comments run from ``%`` or
``#`` to end of line.

Example::

    parse_program('''
        W(x) <- A(x,y), B(y,v), W(v).
        W(x) <- U(x).
        Goal() <- W(x), M(x).
    ''')
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.terms import Variable
from repro.core.ucq import UCQ

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*|\#[^\n]*)
  | (?P<arrow><-|:-)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<string>'[^']*')
  | (?P<number>-?\d+)
  | (?P<name>\$?\w+)
    """,
    re.VERBOSE,
)


class ParseError(ValueError):
    """Raised on malformed input, with position information."""


def _tokens(text: str) -> Iterator[tuple[str, str]]:
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind != "ws":
            yield kind, match.group()
    yield "eof", ""


class _Parser:
    def __init__(self, text: str) -> None:
        self._stream = list(_tokens(text))
        self._i = 0

    def peek(self) -> tuple[str, str]:
        return self._stream[self._i]

    def next(self) -> tuple[str, str]:
        tok = self._stream[self._i]
        self._i += 1
        return tok

    def expect(self, kind: str) -> str:
        got_kind, value = self.next()
        if got_kind != kind:
            raise ParseError(f"expected {kind}, got {got_kind} {value!r}")
        return value

    def parse_term(self):
        kind, value = self.next()
        if kind == "string":
            return value[1:-1]
        if kind == "number":
            return int(value)
        if kind == "name":
            if value.startswith("$"):
                return value[1:]
            if value[0].islower() or value[0] == "_":
                return Variable(value)
            return value  # upper-case bare name used as a constant
        raise ParseError(f"expected term, got {kind} {value!r}")

    def parse_atom(self) -> Atom:
        name = self.expect("name")
        if not name[0].isupper():
            raise ParseError(f"predicate must start upper-case: {name!r}")
        self.expect("lpar")
        args = []
        if self.peek()[0] != "rpar":
            args.append(self.parse_term())
            while self.peek()[0] == "comma":
                self.next()
                args.append(self.parse_term())
        self.expect("rpar")
        return Atom(name, tuple(args))

    def parse_atomlist(self) -> list[Atom]:
        atoms = [self.parse_atom()]
        while self.peek()[0] == "comma":
            self.next()
            atoms.append(self.parse_atom())
        return atoms

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        body: list[Atom] = []
        if self.peek()[0] == "arrow":
            self.next()
            body = self.parse_atomlist()
        if self.peek()[0] == "dot":
            self.next()
        return Rule(head, tuple(body))

    def parse_program(self) -> list[Rule]:
        rules = []
        while self.peek()[0] != "eof":
            rules.append(self.parse_rule())
        return rules


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"R(x, 'a', 3)"``."""
    return _Parser(text).parse_atom()


def parse_rule(text: str) -> Rule:
    """Parse a single rule."""
    return _Parser(text).parse_rule()


def parse_program(text: str) -> DatalogProgram:
    """Parse a whole program."""
    return DatalogProgram(tuple(_Parser(text).parse_program()))


def parse_query(text: str, goal: str, name: str = "Q") -> DatalogQuery:
    """Parse a program and wrap it as a query with the given goal IDB."""
    return DatalogQuery(parse_program(text), goal, name)


def parse_cq(text: str, name: str = "Q") -> ConjunctiveQuery:
    """Parse ``Head(x, y) <- Body...`` as a conjunctive query.

    The head predicate name is discarded; the head arguments (which must
    be variables) become the answer tuple.
    """
    rule = _Parser(text).parse_rule()
    head_vars = []
    for term in rule.head.args:
        if not isinstance(term, Variable):
            raise ParseError("CQ head arguments must be variables")
        head_vars.append(term)
    return ConjunctiveQuery(tuple(head_vars), rule.body, name)


def parse_ucq(text: str, name: str = "Q") -> UCQ:
    """Parse several rules with a common head shape as a UCQ."""
    rules = _Parser(text).parse_program()
    return UCQ(
        tuple(
            ConjunctiveQuery(
                tuple(t for t in r.head.args if isinstance(t, Variable)),
                r.body,
                name,
            )
            for r in rules
        ),
        name,
    )


def parse_instance(text: str) -> Instance:
    """Parse ground facts, e.g. ``"R('a','b'). R('b','c')."``.

    Bare upper-case names in argument positions are constants, so
    ``"Edge(A, B)."`` also works.
    """
    rules = _Parser(text).parse_program()
    inst = Instance()
    for rule in rules:
        if rule.body:
            raise ParseError("instances may not contain rules")
        if not rule.head.is_ground():
            raise ParseError(f"non-ground fact {rule.head!r}")
        inst.add(rule.head)
    return inst
