"""A small text syntax for rules, queries and instances.

Grammar (whitespace-insensitive)::

    program  := rule*
    rule     := atom ("<-" | ":-") atomlist "."?   |  atom "."?
    atom     := PRED "(" termlist? ")"
    term     := VARIABLE | CONSTANT | NUMBER | STRING

Conventions: predicate names start with an upper-case letter; bare
lower-case identifiers are variables; numbers, single-quoted strings and
identifiers starting with ``$`` are constants.  Comments run from ``%`` or
``#`` to end of line.

Every token carries its (1-based) line and column, so :class:`ParseError`
points at the offending source position with a caret excerpt, and the
span-aware entry point :func:`parse_program_source` hands real source
locations to the static analyzer (:mod:`repro.analysis`).

Example::

    parse_program('''
        W(x) <- A(x,y), B(y,v), W(v).
        W(x) <- U(x).
        Goal() <- W(x), M(x).
    ''')
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, NamedTuple, Optional

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.terms import Variable
from repro.core.ucq import UCQ

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*|\#[^\n]*)
  | (?P<arrow><-|:-)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<string>'[^']*')
  | (?P<number>-?\d+)
  | (?P<name>\$?\w+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, 1-based lines and columns."""

    line: int
    col: int
    end_line: int = 0
    end_col: int = 0

    def __post_init__(self) -> None:
        if self.end_line == 0:
            object.__setattr__(self, "end_line", self.line)
        if self.end_col == 0:
            object.__setattr__(self, "end_col", self.col)

    def to(self, other: "Span") -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        return Span(self.line, self.col, other.end_line, other.end_col)

    def label(self) -> str:
        return f"{self.line}:{self.col}"

    def as_dict(self) -> dict[str, int]:
        return {
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "end_col": self.end_col,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


class Token(NamedTuple):
    kind: str
    value: str
    line: int
    col: int

    def span(self) -> Span:
        width = max(len(self.value), 1)
        return Span(self.line, self.col, self.line, self.col + width - 1)


class ParseError(ValueError):
    """Raised on malformed input, with position information.

    ``span`` locates the offending token (None when unavailable) and
    ``excerpt`` is a two-line source snippet with a caret under the
    error position.
    """

    def __init__(
        self,
        message: str,
        span: Optional[Span] = None,
        excerpt: Optional[str] = None,
    ) -> None:
        self.message = message
        self.span = span
        self.excerpt = excerpt
        rendered = message
        if span is not None:
            rendered = f"{message} at {span.label()}"
        if excerpt:
            rendered = f"{rendered}\n{excerpt}"
        super().__init__(rendered)


def _excerpt(lines: list[str], span: Optional[Span]) -> Optional[str]:
    """The source line of ``span`` with a caret under its column."""
    if span is None or not (1 <= span.line <= len(lines)):
        return None
    source = lines[span.line - 1]
    caret = " " * (span.col - 1) + "^"
    return f"    {source}\n    {caret}"


def source_excerpt(text: str, span: Optional[Span]) -> Optional[str]:
    """The caret excerpt :class:`ParseError` uses, for external callers.

    Lets error reporters re-anchor a span against a *different* text
    than the one parsed — e.g. the CLI parses each ``# view:`` block
    separately but reports positions in the whole views file.
    """
    return _excerpt(text.splitlines(), span)


def _tokens(text: str) -> Iterator[Token]:
    pos = 0
    line = 1
    col = 1
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {text[pos]!r}",
                Span(line, col),
                _excerpt(text.splitlines(), Span(line, col)),
            )
        value = match.group()
        kind = match.lastgroup
        if kind != "ws":
            yield Token(kind, value, line, col)
        newlines = value.count("\n")
        if newlines:
            line += newlines
            col = len(value) - value.rfind("\n")
        else:
            col += len(value)
        pos = match.end()
    yield Token("eof", "", line, col)


@dataclass(frozen=True)
class SourceRule:
    """One rule of a program together with its source locations.

    ``rule`` is ``None`` when the rule parsed syntactically but failed
    the safety condition; ``error`` then carries the explanation (the
    analyzer turns it into an ``E002`` diagnostic instead of the parse
    aborting).
    """

    rule: Optional[Rule]
    span: Span
    head_span: Span
    body_spans: tuple[Span, ...]
    error: Optional[str] = None

    def atom_span(self, index: int) -> Span:
        """Span of body atom ``index`` (falling back to the rule span)."""
        if 0 <= index < len(self.body_spans):
            return self.body_spans[index]
        return self.span


@dataclass(frozen=True)
class ProgramSource:
    """A parsed program that remembers where every rule came from."""

    entries: tuple[SourceRule, ...]
    text: str

    def program(self) -> DatalogProgram:
        """The program built from the rules that passed the safety check."""
        return DatalogProgram(
            tuple(e.rule for e in self.entries if e.rule is not None)
        )

    def span_of(self, rule: Rule) -> Optional[Span]:
        """The source span of ``rule`` (first matching entry)."""
        for entry in self.entries:
            if entry.rule == rule:
                return entry.span
        return None


class _Parser:
    def __init__(self, text: str) -> None:
        self._lines = text.splitlines()
        self._stream = list(_tokens(text))
        self._i = 0

    def peek(self) -> Token:
        return self._stream[self._i]

    def next(self) -> Token:
        tok = self._stream[self._i]
        self._i += 1
        return tok

    def error(self, message: str, token: Optional[Token] = None) -> ParseError:
        span = token.span() if token is not None else None
        return ParseError(message, span, _excerpt(self._lines, span))

    def expect(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise self.error(
                f"expected {kind}, got {tok.kind} {tok.value!r}", tok
            )
        return tok

    def parse_term(self):
        tok = self.next()
        kind, value = tok.kind, tok.value
        if kind == "string":
            return value[1:-1]
        if kind == "number":
            return int(value)
        if kind == "name":
            if value.startswith("$"):
                return value[1:]
            if value[0].islower() or value[0] == "_":
                return Variable(value)
            return value  # upper-case bare name used as a constant
        raise self.error(f"expected term, got {kind} {value!r}", tok)

    def parse_atom_spanned(self) -> tuple[Atom, Span]:
        start = self.expect("name")
        name = start.value
        if not name[0].isupper():
            raise self.error(
                f"predicate must start upper-case: {name!r}", start
            )
        self.expect("lpar")
        args = []
        if self.peek().kind != "rpar":
            args.append(self.parse_term())
            while self.peek().kind == "comma":
                self.next()
                args.append(self.parse_term())
        close = self.expect("rpar")
        return Atom(name, tuple(args)), start.span().to(close.span())

    def parse_atom(self) -> Atom:
        return self.parse_atom_spanned()[0]

    def parse_atomlist_spanned(self) -> tuple[list[Atom], list[Span]]:
        atom, span = self.parse_atom_spanned()
        atoms, spans = [atom], [span]
        while self.peek().kind == "comma":
            self.next()
            atom, span = self.parse_atom_spanned()
            atoms.append(atom)
            spans.append(span)
        return atoms, spans

    def parse_atomlist(self) -> list[Atom]:
        return self.parse_atomlist_spanned()[0]

    def parse_rule_source(self) -> SourceRule:
        """Parse one rule, reporting safety violations instead of raising."""
        head, head_span = self.parse_atom_spanned()
        body: list[Atom] = []
        body_spans: list[Span] = []
        last_span = head_span
        if self.peek().kind == "arrow":
            self.next()
            body, body_spans = self.parse_atomlist_spanned()
            last_span = body_spans[-1]
        if self.peek().kind == "dot":
            last_span = self.next().span()
        span = head_span.to(last_span)
        body_vars = set()
        for atom in body:
            body_vars |= atom.variables()
        unsafe = sorted(
            v.name for v in head.variables() if v not in body_vars
        )
        if unsafe:
            names = ", ".join(unsafe)
            return SourceRule(
                None,
                span,
                head_span,
                tuple(body_spans),
                error=(
                    f"unsafe rule: head variable(s) {names} do not occur "
                    f"in the body of {head!r}"
                ),
            )
        return SourceRule(
            Rule(head, tuple(body)), span, head_span, tuple(body_spans)
        )

    def parse_rule(self) -> Rule:
        source = self.parse_rule_source()
        if source.rule is None:
            raise ParseError(
                source.error or "unsafe rule",
                source.head_span,
                _excerpt(self._lines, source.head_span),
            )
        return source.rule

    def parse_program_source(self) -> list[SourceRule]:
        entries = []
        while self.peek().kind != "eof":
            entries.append(self.parse_rule_source())
        return entries

    def parse_program(self) -> list[Rule]:
        rules = []
        while self.peek().kind != "eof":
            rules.append(self.parse_rule())
        return rules


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"R(x, 'a', 3)"``."""
    return _Parser(text).parse_atom()


def parse_rule(text: str) -> Rule:
    """Parse a single rule."""
    return _Parser(text).parse_rule()


def parse_program(text: str) -> DatalogProgram:
    """Parse a whole program."""
    return DatalogProgram(tuple(_Parser(text).parse_program()))


def parse_program_source(text: str) -> ProgramSource:
    """Parse a program keeping source spans and tolerating unsafe rules.

    Hard syntax errors still raise :class:`ParseError`; rules that parse
    but violate the safety condition come back as entries with
    ``rule=None`` and an ``error`` message, so the static analyzer can
    report them as diagnostics with accurate positions.
    """
    return ProgramSource(
        tuple(_Parser(text).parse_program_source()), text
    )


def parse_query(text: str, goal: str, name: str = "Q") -> DatalogQuery:
    """Parse a program and wrap it as a query with the given goal IDB."""
    return DatalogQuery(parse_program(text), goal, name)


def parse_cq(text: str, name: str = "Q") -> ConjunctiveQuery:
    """Parse ``Head(x, y) <- Body...`` as a conjunctive query.

    The head predicate name is discarded; the head arguments (which must
    be variables) become the answer tuple.
    """
    rule = _Parser(text).parse_rule()
    head_vars = []
    for term in rule.head.args:
        if not isinstance(term, Variable):
            raise ParseError("CQ head arguments must be variables")
        head_vars.append(term)
    return ConjunctiveQuery(tuple(head_vars), rule.body, name)


def parse_ucq(text: str, name: str = "Q") -> UCQ:
    """Parse several rules with a common head shape as a UCQ."""
    rules = _Parser(text).parse_program()
    return UCQ(
        tuple(
            ConjunctiveQuery(
                tuple(t for t in r.head.args if isinstance(t, Variable)),
                r.body,
                name,
            )
            for r in rules
        ),
        name,
    )


def parse_instance(text: str) -> Instance:
    """Parse ground facts, e.g. ``"R('a','b'). R('b','c')."``.

    Bare upper-case names in argument positions are constants, so
    ``"Edge(A, B)."`` also works.
    """
    parser = _Parser(text)
    entries = parser.parse_program_source()
    inst = Instance()
    for entry in entries:
        if entry.rule is None:
            raise ParseError(
                entry.error or "unsafe rule",
                entry.head_span,
                _excerpt(text.splitlines(), entry.head_span),
            )
        if entry.rule.body:
            raise ParseError(
                "instances may not contain rules",
                entry.span,
                _excerpt(text.splitlines(), entry.span),
            )
        if not entry.rule.head.is_ground():
            raise ParseError(
                f"non-ground fact {entry.rule.head!r}",
                entry.head_span,
                _excerpt(text.splitlines(), entry.head_span),
            )
        inst.add(entry.rule.head)
    return inst
