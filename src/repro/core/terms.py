"""Terms: variables and constants.

The term language is deliberately minimal.  A :class:`Variable` is a named
placeholder; *anything else hashable* used in an atom position is treated
as a constant (strings, ints, tuples of such, ...).  This keeps instances
lightweight — the domain of a database instance is a set of plain Python
values — while queries mix variables and constants freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

Term = Hashable
"""A term is a :class:`Variable` or any hashable constant."""


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable, identified by name.

    Two variables with the same name are the same variable.  Use
    :func:`variables` for compact construction of several at once.
    """

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"?{self.name}"

    def __str__(self) -> str:
        return f"?{self.name}"


def variables(names: str) -> tuple[Variable, ...]:
    """Build a tuple of variables from a whitespace/comma separated string.

    >>> x, y = variables("x y")
    >>> x
    ?x
    """
    parts = names.replace(",", " ").split()
    return tuple(Variable(p) for p in parts)


def is_variable(term: Any) -> bool:
    """True when ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Any) -> bool:
    """True when ``term`` is a constant (i.e. not a :class:`Variable`)."""
    return not isinstance(term, Variable)


def term_variables(terms) -> set[Variable]:
    """All variables occurring in an iterable of terms."""
    return {t for t in terms if isinstance(t, Variable)}


def term_constants(terms) -> set:
    """All constants occurring in an iterable of terms."""
    return {t for t in terms if not isinstance(t, Variable)}
