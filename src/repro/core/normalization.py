"""Monadic Datalog normalization (Prop. 2, after [Chaudhuri–Vardi]).

An MDL query is *normalized* when the body of any recursive rule contains
no IDB atom carrying the head variable.  Normalization matters because CQ
approximations of normalized queries admit tree decompositions with
``l(TD) ≤ 2`` (Lemma 1), the hypothesis of the treewidth bound of Lemma 3.

Construction.  For each unary IDB ``I`` we build a new predicate ``N_I``
with one rule per *absorption configuration* ``(R, f)``:

* ``R`` is a set of unary IDBs with ``I ∈ R``,
* ``f`` picks a defining rule for each member of ``R``,
* the "on-x" demands are closed (every IDB atom on the head variable in a
  chosen body has its predicate in ``R``) and *acyclic* (so the combined
  support corresponds to a well-founded derivation, never circular
  support like ``I(x) ← I(x)``), and
* every member of ``R ∖ {I}`` is demanded by some chosen body.

The emitted body is the union of the chosen bodies with the head variable
unified, non-head variables renamed apart, on-x IDB atoms dropped, and
remaining IDB atoms renamed to their ``N_…`` versions.  Nullary-headed
rules only need the renaming.  The result is a normalized MDL query
equivalent to the input.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Iterator

import networkx as nx

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.terms import Variable
from repro.util.fresh import FreshNames


def is_normalized(query: DatalogQuery) -> bool:
    """Whether no rule body has an IDB atom on the rule's head variable."""
    idb = query.program.idb_predicates()
    for rule in query.program.rules:
        head_vars = rule.head.variables()
        if not head_vars:
            continue
        for atom in rule.body:
            if atom.pred in idb and atom.variables() & head_vars:
                return False
    return True


def _on_head_idbs(rule: Rule, idb: set[str]) -> set[str]:
    """Predicates of body IDB atoms carrying the head variable."""
    head_vars = rule.head.variables()
    return {
        a.pred
        for a in rule.body
        if a.pred in idb and a.variables() & head_vars
    }


def _rename_body(
    rule: Rule,
    head_var: Variable,
    idb: set[str],
    new_name: dict[str, str],
    fresh: FreshNames,
) -> list[Atom]:
    """One chosen rule's contribution to an absorption body.

    Head variable unified to ``head_var``, other variables fresh, on-x
    IDB atoms dropped, remaining IDB atoms renamed.
    """
    old_head = next(iter(rule.head.variables()))
    renaming: dict[Variable, Variable] = {old_head: head_var}
    for var in rule.variables():
        if var not in renaming:
            renaming[var] = Variable(fresh())
    out: list[Atom] = []
    for atom in rule.body:
        sub = atom.substitute(renaming)
        if atom.pred in idb:
            if head_var in sub.variables():
                continue  # absorbed via R
            out.append(Atom(new_name[atom.pred], sub.args))
        else:
            out.append(sub)
    return out


def _configurations(
    program: DatalogProgram, pred: str, idb: set[str]
) -> Iterator[dict[str, Rule]]:
    """All valid absorption configurations ``(R, f)`` for ``pred``.

    Yields the rule choice ``f`` as a dict ``R → Rule``; validity is the
    closure + acyclicity + demandedness condition documented above.
    """
    unary_idbs = sorted(
        p for p in idb if program.arity_of(p) == 1
    )
    others = [p for p in unary_idbs if p != pred]
    for extra_size in range(len(others) + 1):
        for extra in combinations(others, extra_size):
            members = (pred,) + extra
            rule_options = [program.rules_for(p) for p in members]
            if any(not opts for opts in rule_options):
                continue
            for choice in product(*rule_options):
                config = dict(zip(members, choice))
                demands = {
                    p: _on_head_idbs(r, idb) & set(unary_idbs)
                    for p, r in config.items()
                }
                # closure: every demand is in R
                if any(d - set(members) for d in demands.values()):
                    continue
                # demandedness: each extra member is demanded by someone
                demanded: set[str] = set()
                for d in demands.values():
                    demanded |= d
                if any(p not in demanded for p in extra):
                    continue
                # acyclicity of the on-x support
                graph = nx.DiGraph()
                graph.add_nodes_from(members)
                for p, d in demands.items():
                    for q in d:
                        graph.add_edge(q, p)  # q must be derived before p
                if not nx.is_directed_acyclic_graph(graph):
                    continue
                yield config


def normalize(query: DatalogQuery) -> DatalogQuery:
    """Return a normalized MDL query equivalent to ``query`` (Prop. 2).

    Raises for non-monadic input.  Already-normalized queries are renamed
    but otherwise unchanged in structure.
    """
    program = query.program
    if not program.is_monadic():
        raise ValueError("normalization applies to Monadic Datalog only")
    idb = program.idb_predicates()
    new_name = {p: f"N_{p}" for p in idb}
    fresh = FreshNames("n")

    new_rules: list[Rule] = []
    for pred in sorted(idb):
        arity = program.arity_of(pred)
        if arity == 0:
            # Nullary heads are trivially normalized; just rename IDBs.
            for rule in program.rules_for(pred):
                body = []
                for atom in rule.body:
                    if atom.pred in idb:
                        body.append(Atom(new_name[atom.pred], atom.args))
                    else:
                        body.append(atom)
                new_rules.append(Rule(Atom(new_name[pred], ()), tuple(body)))
            continue

        head_var = Variable(f"x_{pred}")
        seen_bodies: set = set()
        for config in _configurations(program, pred, idb):
            body: list[Atom] = []
            for member in sorted(config):
                body.extend(
                    _rename_body(config[member], head_var, idb, new_name, fresh)
                )
            from repro.util.canonical import canonical_form

            cert = canonical_form(body, (head_var,))
            if cert in seen_bodies:
                continue
            seen_bodies.add(cert)
            new_rules.append(
                Rule(Atom(new_name[pred], (head_var,)), tuple(body))
            )

    return DatalogQuery(
        DatalogProgram(tuple(new_rules)),
        new_name[query.goal],
        f"{query.name}_normalized",
    )
