"""Evaluation backends: pluggable engines behind ``fixpoint``.

A :class:`Backend` turns ``(program, instance, strategy)`` into the
least fixpoint ``FPEval(Π, I)``.  Two implementations ship:

* ``interpreted`` — the default engine: per-tuple backtracking
  homomorphism search with positional indexes, semi-naive deltas and
  SCC strata (:mod:`repro.core.evaluation`).
* ``columnar`` — compiles each rule body into an explicit hash-join
  plan over column arrays and pushes semi-naive deltas through it as
  column batches (:mod:`repro.core.columnar`).

Both compute exactly the same fixpoint — the engine-equivalence
property tests and, end to end, the PR-4 certificate checker
(``certify.replay`` replays every verdict with naive evaluation only)
enforce that — so backend choice is a performance decision, never a
semantics one.

Selection is by name: explicitly via ``fixpoint(backend=...)`` /
``DatalogQuery.evaluate(backend=...)``, or ambiently via
:func:`set_default_backend` (the harness worker processes and the
CLI's ``--backend`` flag use this route so call sites need no
signature change).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover - types only, avoids import cycles
    from repro.core.datalog import DatalogProgram
    from repro.core.instance import Instance
    from repro.core.stats import EngineStats


class Backend(Protocol):
    """One evaluation engine behind :func:`repro.core.evaluation.fixpoint`.

    ``strategy`` is one of ``"naive"`` / ``"seminaive"`` /
    ``"stratified"`` and every backend must support all three (the
    naive strategy stays the cross-backend correctness oracle).
    ``ordering`` is the join-ordering hint of the interpreted engine;
    backends that plan joins differently may ignore it.
    """

    name: str

    def fixpoint(
        self,
        program: "DatalogProgram",
        instance: "Instance",
        *,
        strategy: str = "stratified",
        stats: Optional["EngineStats"] = None,
        ordering: str = "auto",
    ) -> "Instance":
        """``FPEval(Π, I)`` including the original EDB facts."""
        ...  # pragma: no cover - protocol


class InterpretedBackend:
    """The per-tuple backtracking engine (the historical default)."""

    name = "interpreted"

    def fixpoint(
        self,
        program: "DatalogProgram",
        instance: "Instance",
        *,
        strategy: str = "stratified",
        stats: Optional["EngineStats"] = None,
        ordering: str = "auto",
    ) -> "Instance":
        from repro.core import evaluation

        if strategy == "stratified":
            return evaluation.stratified_fixpoint(
                program, instance, stats, ordering
            )
        if strategy == "seminaive":
            return evaluation.seminaive_fixpoint(
                program, instance, stats, ordering
            )
        if strategy == "naive":
            return evaluation.naive_fixpoint(
                program, instance, stats, ordering
            )
        raise ValueError(f"unknown strategy {strategy!r}")


class ColumnarBackend:
    """Hash-join plans over column arrays; no backtracking search."""

    name = "columnar"

    def fixpoint(
        self,
        program: "DatalogProgram",
        instance: "Instance",
        *,
        strategy: str = "stratified",
        stats: Optional["EngineStats"] = None,
        ordering: str = "auto",
    ) -> "Instance":
        from repro.core.columnar import columnar_fixpoint

        return columnar_fixpoint(
            program, instance, strategy=strategy, stats=stats
        )


#: how the ``auto`` backend decided each fixpoint since the last
#: :func:`reset_auto_resolutions` — ``{"backend", "volume", "threshold"}``
#: dicts, newest last, surfaced into run manifests so cached results
#: stay explainable
_AUTO_RESOLUTIONS: list[dict[str, object]] = []


def auto_resolutions() -> list[dict[str, object]]:
    """Snapshot of the ``auto`` backend's choices (newest last)."""
    return list(_AUTO_RESOLUTIONS)


def reset_auto_resolutions() -> None:
    """Clear the recorded ``auto`` choices (start of a measured run)."""
    _AUTO_RESOLUTIONS.clear()


class AutoBackend:
    """Cost-model-driven backend choice, one decision per fixpoint.

    The static cost analysis (:mod:`repro.analysis.cost`) predicts the
    total join volume — the sum of every rule's intermediate-tuple
    bound under the instance's measured parameters.  Small volumes stay
    on the interpreted engine (per-tuple search with no plan-build
    overhead); volumes at or above ``threshold`` go columnar, where
    batch probes amortize the hash-table builds.  Every decision is
    recorded (see :func:`auto_resolutions`) and counted into
    ``EngineStats.auto_backend_*``, so a manifest can say not just
    *what* ran but *why*.
    """

    name = "auto"

    #: predicted join volume at which the columnar engine starts to win;
    #: calibrated on the BENCH_columnar goal-bound chain (volume ~15k,
    #: clearly columnar) vs the evidence suite's paper-sized instances
    #: (volumes in the tens to hundreds, clearly interpreted)
    DEFAULT_THRESHOLD = 4096

    def __init__(self, threshold: int = DEFAULT_THRESHOLD) -> None:
        self.threshold = threshold

    def fixpoint(
        self,
        program: "DatalogProgram",
        instance: "Instance",
        *,
        strategy: str = "stratified",
        stats: Optional["EngineStats"] = None,
        ordering: str = "auto",
    ) -> "Instance":
        from repro.analysis.cost import predicted_join_volume
        from repro.core import stats as _stats

        with _stats.suspended():
            volume = predicted_join_volume(program, instance)
        chosen = "columnar" if volume >= self.threshold else "interpreted"
        _AUTO_RESOLUTIONS.append(
            {
                "backend": chosen,
                "volume": volume,
                "threshold": self.threshold,
            }
        )
        collector = stats if stats is not None else _stats.active()
        if collector is not None:
            if chosen == "columnar":
                collector.auto_backend_columnar += 1
            else:
                collector.auto_backend_interpreted += 1
        return get_backend(chosen).fixpoint(
            program,
            instance,
            strategy=strategy,
            stats=stats,
            ordering=ordering,
        )


_BACKENDS: dict[str, Backend] = {
    "interpreted": InterpretedBackend(),
    "columnar": ColumnarBackend(),
    "auto": AutoBackend(),
}


def backend_names() -> tuple[str, ...]:
    """Registered backend names, default first (CLI ``choices``)."""
    names = sorted(_BACKENDS)
    names.remove("interpreted")
    return ("interpreted", *names)


def register_backend(backend: Backend) -> None:
    """Add (or replace) a backend under ``backend.name``."""
    _BACKENDS[backend.name] = backend


def get_backend(name: str) -> Backend:
    """The backend registered as ``name``; loud on unknown names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(backend_names())
        raise ValueError(
            f"unknown backend {name!r} (known: {known})"
        ) from None


#: ambient default for ``fixpoint(..., backend=None)``; flipped by
#: :func:`set_default_backend` (harness workers, CLI ``--backend``).
_DEFAULT_BACKEND = "interpreted"


def set_default_backend(name: str) -> str:
    """Set the ambient default backend; returns the previous name so
    callers can restore it.  Rejects unregistered names up front."""
    global _DEFAULT_BACKEND
    get_backend(name)  # validate before committing
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name
    return previous


def default_backend() -> str:
    """The current ambient backend name."""
    return _DEFAULT_BACKEND


def resolve_backend(name: Optional[str] = None) -> Backend:
    """``name`` if given, else the ambient default, as a :class:`Backend`."""
    return get_backend(name if name is not None else _DEFAULT_BACKEND)
