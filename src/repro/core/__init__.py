"""Relational and Datalog substrate (§2 of the paper)."""

from repro.core.terms import Variable, variables, Term
from repro.core.atoms import Atom, Fact, make_fact
from repro.core.instance import ANY, Instance
from repro.core.schema import Schema
from repro.core.stats import EngineStats, collecting
from repro.core.cq import ConjunctiveQuery, CanonConst, cq_from_instance
from repro.core.ucq import UCQ, as_ucq
from repro.core.datalog import Rule, DatalogProgram, DatalogQuery
from repro.core.evaluation import fixpoint, naive_fixpoint, seminaive_fixpoint
from repro.core.backend import (
    Backend,
    backend_names,
    default_backend,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.core.columnar import columnar_fixpoint
from repro.core.approximation import (
    ExpansionNode,
    approximations,
    approximation_trees,
    expansion_trees,
    tree_to_cq,
)
from repro.core.normalization import is_normalized, normalize
from repro.core.containment import (
    ContainmentResult,
    Verdict,
    cq_contained,
    cq_contained_in_datalog,
    datalog_contained_bounded,
    datalog_contained_in_ucq,
    ucq_contained,
)
from repro.core.homomorphism import (
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    instance_homomorphism,
    instance_maps_into,
    is_partial_homomorphism,
)
from repro.core.gaifman import gaifman_graph, radius, is_connected
from repro.core.optimize import (
    drop_subsumed_rules,
    minimize_rule_bodies,
    optimize_query,
    reachable_rules,
    rule_subsumes,
)
from repro.core.prooftree import ProofNode, prove, verify_proof
from repro.core.serialize import (
    cq_to_text,
    instance_to_text,
    program_to_text,
    query_to_text,
    ucq_to_text,
)
from repro.core.parser import (
    parse_atom,
    parse_cq,
    parse_instance,
    parse_program,
    parse_query,
    parse_rule,
    parse_ucq,
)

__all__ = [
    "ANY", "EngineStats", "collecting",
    "Variable", "variables", "Term", "Atom", "Fact", "make_fact",
    "Instance", "Schema", "ConjunctiveQuery", "CanonConst",
    "cq_from_instance", "UCQ", "as_ucq", "Rule", "DatalogProgram",
    "DatalogQuery", "fixpoint", "naive_fixpoint", "seminaive_fixpoint",
    "Backend", "backend_names", "columnar_fixpoint", "default_backend",
    "get_backend", "register_backend", "set_default_backend",
    "ExpansionNode", "approximations", "approximation_trees",
    "expansion_trees", "tree_to_cq", "is_normalized", "normalize",
    "ContainmentResult", "Verdict", "cq_contained",
    "cq_contained_in_datalog", "datalog_contained_bounded",
    "datalog_contained_in_ucq", "ucq_contained", "find_homomorphism",
    "has_homomorphism", "homomorphisms", "instance_homomorphism",
    "instance_maps_into", "is_partial_homomorphism", "gaifman_graph",
    "radius", "is_connected", "parse_atom", "parse_cq", "parse_instance",
    "parse_program", "parse_query", "parse_rule", "parse_ucq",
    "drop_subsumed_rules", "minimize_rule_bodies", "optimize_query",
    "reachable_rules", "rule_subsumes", "ProofNode", "prove",
    "verify_proof", "cq_to_text", "instance_to_text", "program_to_text",
    "query_to_text", "ucq_to_text",
]
