"""Gaifman graphs, radius, and connectivity (§2 of the paper).

The Gaifman graph of an instance has the active-domain elements as nodes
and an edge between any two elements co-occurring in a fact.  The *radius*
``min_u max_v dist(u, v)`` bounds how far view definitions can "reach"
(Lemma 3 uses the maximal radius of the view CQs).
"""

from __future__ import annotations

import math
from itertools import combinations

import networkx as nx

from repro.core.instance import Instance


def gaifman_graph(instance: Instance) -> nx.Graph:
    """The Gaifman graph of ``instance`` (isolated elements included)."""
    graph = nx.Graph()
    graph.add_nodes_from(instance.active_domain())
    for fact in instance.facts():
        distinct = set(fact.args)
        for u, v in combinations(distinct, 2):
            graph.add_edge(u, v)
    return graph


def radius(instance: Instance) -> float:
    """Radius of the Gaifman graph.

    Returns 0 for empty or single-element instances and ``math.inf`` when
    the graph is disconnected (a disconnected CQ has unbounded reach; the
    paper handles such views by splitting them into connected parts).
    """
    graph = gaifman_graph(instance)
    if graph.number_of_nodes() <= 1:
        return 0
    if not nx.is_connected(graph):
        return math.inf
    ecc = nx.eccentricity(graph)
    return min(ecc.values())


def is_connected(instance: Instance) -> bool:
    """Whether the Gaifman graph is connected (vacuously true if <=1 node)."""
    graph = gaifman_graph(instance)
    if graph.number_of_nodes() <= 1:
        return True
    return nx.is_connected(graph)


def connected_components(instance: Instance) -> list[Instance]:
    """Split an instance into its Gaifman-connected components.

    Facts over disjoint element sets land in different components; the
    0-ary facts (if any) are attached to every component or returned as a
    separate component when the instance is otherwise empty.
    """
    graph = gaifman_graph(instance)
    components = list(nx.connected_components(graph))
    if not components:
        return [instance.copy()] if len(instance) else []
    parts: list[Instance] = []
    nullary = [f for f in instance.facts() if not f.args]
    for comp in components:
        part = Instance()
        for fact in instance.facts():
            if fact.args and set(fact.args) <= comp:
                part.add(fact)
        for fact in nullary:
            part.add(fact)
        if len(part):
            parts.append(part)
    if not parts and nullary:
        parts.append(Instance(nullary))
    return parts


def distance(instance: Instance, u, v) -> float:
    """Gaifman distance between two elements (``inf`` if disconnected)."""
    graph = gaifman_graph(instance)
    try:
        return nx.shortest_path_length(graph, u, v)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return math.inf
