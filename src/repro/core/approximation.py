"""CQ approximations of Datalog queries (§2, Prop. 1).

``CQAppr(Π, U(x̄), i)`` unfolds the program: rule bodies with intensional
atoms replaced by (smaller-depth) approximations of those atoms.  We work
with an explicit *expansion tree* representation — one node per rule
firing — because later constructions need more than the flat CQ:

* the canonical tree decomposition with one bag per rule body (used by
  the forward mapping, Prop. 3, and by Lemma 1's treespan bound), and
* the proof-tree structure itself (Lemma 5's canonical tests, Prop. 12).

:func:`approximations` yields the flat CQs, deduplicated up to variable
renaming, in nondecreasing expansion depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.terms import Term, Variable, is_variable
from repro.util.fresh import FreshNames


@dataclass(frozen=True)
class ExpansionNode:
    """One rule firing in an expansion tree.

    ``mapping`` sends the rule's variables to *global* terms (fresh
    variables, or constants propagated from rule heads).  ``children``
    aligns 1:1 with the intensional atoms of the rule body, in body
    order (``idb_positions`` gives their indices in ``rule.body``).
    """

    rule: Rule
    mapping: dict
    children: tuple["ExpansionNode", ...]
    idb_positions: tuple[int, ...]

    def edb_atoms(self) -> list[Atom]:
        """The rule's extensional atoms under the global mapping."""
        idb = set(self.idb_positions)
        return [
            atom.substitute(self.mapping)
            for i, atom in enumerate(self.rule.body)
            if i not in idb
        ]

    def head_atom(self) -> Atom:
        """The derived head fact/atom under the global mapping."""
        return self.rule.head.substitute(self.mapping)

    def bag(self) -> list:
        """All global terms of this node (its decomposition bag)."""
        seen: list = []
        for term in self.mapping.values():
            if term not in seen:
                seen.append(term)
        return seen

    def nodes(self) -> Iterator["ExpansionNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.nodes()

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(c.depth() for c in self.children)

    def all_atoms(self) -> list[Atom]:
        """All EDB atoms of the whole tree (the expansion's body)."""
        out: list[Atom] = []
        for node in self.nodes():
            out.extend(node.edb_atoms())
        return out


def _idb_positions(rule: Rule, idb: set[str]) -> tuple[int, ...]:
    return tuple(i for i, a in enumerate(rule.body) if a.pred in idb)


def expansion_trees(
    program: DatalogProgram,
    pred: str,
    max_depth: int,
    fresh: Optional[FreshNames] = None,
    head_terms: Optional[tuple[Term, ...]] = None,
) -> Iterator[ExpansionNode]:
    """All expansion trees for ``pred`` of depth at most ``max_depth``.

    ``head_terms`` fixes the global terms the head arguments map to (used
    when expanding an intensional atom inside a larger expansion); by
    default fresh variables are created.
    """
    fresh = fresh or FreshNames("x")
    idb = program.idb_predicates()
    if max_depth <= 0:
        return
    for rule in program.rules:
        head_vars = [t for t in rule.head.args if is_variable(t)]
        if len(set(head_vars)) != len(head_vars):
            raise ValueError(
                "expansion requires distinct head variables per rule "
                f"(unification up the tree is not supported): {rule!r}"
            )

    for rule in program.rules_for(pred):
        head_args = rule.head.args
        mapping: dict = {}
        if head_terms is not None:
            if len(head_terms) != len(head_args):
                raise ValueError("head arity mismatch in expansion")
            consistent = True
            for rv, gt in zip(head_args, head_terms):
                if is_variable(rv):
                    if rv in mapping and mapping[rv] != gt:
                        consistent = False
                        break
                    mapping[rv] = gt
                elif rv != gt:
                    consistent = False
                    break
            if not consistent:
                continue
        else:
            for rv in head_args:
                if is_variable(rv) and rv not in mapping:
                    mapping[rv] = Variable(fresh())
        for var in rule.variables():
            if var not in mapping:
                mapping[var] = Variable(fresh())

        positions = _idb_positions(rule, idb)
        if not positions:
            yield ExpansionNode(rule, mapping, (), ())
            continue
        if max_depth == 1:
            continue

        def expand_from(
            index: int,
            acc: list[ExpansionNode],
            # bind the current iteration's values: the closure outlives
            # the loop body only as a generator consumed right below,
            # but default-binding makes that independence explicit
            rule: Rule = rule,
            mapping: dict = mapping,
            positions: tuple[int, ...] = positions,
        ) -> Iterator[tuple[ExpansionNode, ...]]:
            if index == len(positions):
                yield tuple(acc)
                return
            atom = rule.body[positions[index]]
            child_head = tuple(
                mapping[t] if is_variable(t) else t for t in atom.args
            )
            for child in expansion_trees(
                program, atom.pred, max_depth - 1, fresh, child_head
            ):
                acc.append(child)
                yield from expand_from(index + 1, acc)
                acc.pop()

        for children in expand_from(0, []):
            yield ExpansionNode(rule, dict(mapping), children, positions)


def tree_to_cq(tree: ExpansionNode, name: str = "Q") -> ConjunctiveQuery:
    """Flatten an expansion tree to its CQ approximation."""
    head = tree.head_atom()
    head_vars = tuple(t for t in head.args if is_variable(t))
    if len(head_vars) != len(head.args):
        raise ValueError("expansion head contains constants; not a plain CQ")
    return ConjunctiveQuery(head_vars, tuple(tree.all_atoms()), name)


def approximations(
    query: DatalogQuery,
    max_depth: int,
    max_count: Optional[int] = None,
    dedup: bool = True,
) -> Iterator[ConjunctiveQuery]:
    """CQ approximations of a Datalog query, by nondecreasing depth.

    Deduplicates up to variable renaming (certificate-based) unless
    ``dedup=False``.  ``max_count`` caps the number yielded.
    """
    seen: set = set()
    count = 0
    for depth in range(1, max_depth + 1):
        for tree in expansion_trees(query.program, query.goal, depth):
            if tree.depth() != depth:
                continue  # emitted at a smaller depth already
            cq = tree_to_cq(tree, f"{query.name}~{depth}")
            if dedup:
                cert = cq.certificate()
                if cert in seen:
                    continue
                seen.add(cert)
            yield cq
            count += 1
            if max_count is not None and count >= max_count:
                return


def approximation_trees(
    query: DatalogQuery,
    max_depth: int,
    max_count: Optional[int] = None,
) -> Iterator[ExpansionNode]:
    """Expansion trees of the goal, by nondecreasing depth, deduped."""
    seen: set = set()
    count = 0
    for depth in range(1, max_depth + 1):
        for tree in expansion_trees(query.program, query.goal, depth):
            if tree.depth() != depth:
                continue
            cq = tree_to_cq(tree)
            cert = cq.certificate()
            if cert in seen:
                continue
            seen.add(cert)
            yield tree
            count += 1
            if max_count is not None and count >= max_count:
                return


def approximation_holds_somewhere(
    query: DatalogQuery,
    instance,
    max_depth: int,
) -> bool:
    """Sanity helper for Prop. 1: some approximation maps into ``instance``.

    Equivalent to bounded evaluation of the query; used in tests to check
    Prop. 1 against ``FPEval``.
    """
    return any(
        cq.boolean(instance) for cq in approximations(query, max_depth)
    )
