"""Atoms and facts.

An :class:`Atom` is a predicate applied to a tuple of terms.  A *fact* is a
ground atom (no variables); :data:`Fact` is provided as an alias so that
code reads naturally (``Fact("R", (1, 2))``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.terms import Term, Variable, is_variable


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate symbol applied to terms.

    ``args`` is always stored as a tuple, so atoms are hashable and can be
    collected in sets (instances, rule bodies).
    """

    pred: str
    args: tuple[Term, ...]

    def __init__(self, pred: str, args: Iterable[Term] = ()) -> None:
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "args", tuple(args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> set[Variable]:
        """The set of variables occurring in this atom."""
        return {t for t in self.args if isinstance(t, Variable)}

    def constants(self) -> set:
        """The set of constants occurring in this atom."""
        return {t for t in self.args if not isinstance(t, Variable)}

    def is_ground(self) -> bool:
        """True when the atom contains no variables (i.e. it is a fact)."""
        return not any(is_variable(t) for t in self.args)

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Apply a substitution to the arguments.

        Terms absent from ``mapping`` are left unchanged, so a partial
        substitution produces a partially-ground atom.
        """
        return Atom(self.pred, tuple(mapping.get(t, t) for t in self.args))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.pred}({inner})"


Fact = Atom
"""A fact is a ground :class:`Atom`; the alias documents intent."""


def make_fact(pred: str, *args: Term) -> Atom:
    """Construct a fact, asserting groundness.

    >>> make_fact("R", 1, 2)
    R(1, 2)
    """
    atom = Atom(pred, args)
    if not atom.is_ground():
        raise ValueError(f"fact must be ground, got {atom!r}")
    return atom


def atoms_variables(atoms: Iterable[Atom]) -> set[Variable]:
    """All variables occurring in an iterable of atoms."""
    out: set[Variable] = set()
    for atom in atoms:
        out |= atom.variables()
    return out


def atoms_constants(atoms: Iterable[Atom]) -> set:
    """All constants occurring in an iterable of atoms."""
    out: set = set()
    for atom in atoms:
        out |= atom.constants()
    return out
