"""Proof terms for Datalog derivations (appendix, "Proof terms and
annotated proof terms").

A proof term witnesses ``I ⊨ Q(d̄)``: a finite tree whose nodes carry
ground facts, leaves carry EDB facts of ``I``, and each internal node
carries the rule whose instantiation derives its fact from its
children's facts.  Proof terms are the paper's working semantics for
Datalog (Lemma 5's test construction and Prop. 12's jointly-annotated
terms are built from them); here they double as *explanations*: why did
the query accept?

:func:`prove` extracts a proof term from a fixpoint run by recording,
for every derived fact, the first rule instantiation that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.homomorphism import homomorphisms
from repro.core.instance import Instance


@dataclass(frozen=True)
class ProofNode:
    """One node of a proof term."""

    fact: Atom
    rule: Optional[Rule]  # None for leaves (EDB facts)
    children: tuple["ProofNode", ...]

    def is_leaf(self) -> bool:
        return self.rule is None

    def nodes(self) -> Iterator["ProofNode"]:
        yield self
        for child in self.children:
            yield from child.nodes()

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(c.depth() for c in self.children)

    def leaf_facts(self) -> list[Atom]:
        """The EDB facts supporting the derivation."""
        return [n.fact for n in self.nodes() if n.is_leaf()]

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        label = f"{self.fact!r}"
        if self.rule is not None:
            label += f"   [by {self.rule!r}]"
        lines = [pad + label]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


class _Derivations:
    """First-derivation bookkeeping during a naive fixpoint run."""

    def __init__(self, program: DatalogProgram, instance: Instance) -> None:
        self.program = program
        self.instance = instance
        self.idb = program.idb_predicates()
        # fact -> (rule, body facts) of its first derivation
        self.support: dict[Atom, tuple[Rule, tuple[Atom, ...]]] = {}
        self._saturate()

    def _saturate(self) -> None:
        state = self.instance.copy()
        changed = True
        while changed:
            derived: list[tuple[Atom, Rule, tuple[Atom, ...]]] = []
            for rule in self.program.rules:
                if not rule.body:
                    derived.append((rule.head, rule, ()))
                    continue
                for hom in homomorphisms(rule.body, state):
                    head = rule.head.substitute(hom)
                    body = tuple(a.substitute(hom) for a in rule.body)
                    derived.append((head, rule, body))
            changed = False
            for head, rule, body in derived:
                if state.add(head):
                    changed = True
                if head not in self.support and (
                    head.pred in self.idb and head not in self.instance
                ):
                    self.support.setdefault(head, (rule, body))
        self.state = state

    def build(
        self, fact: Atom, seen: Optional[frozenset] = None
    ) -> ProofNode:
        seen = frozenset() if seen is None else seen
        if fact in self.instance or fact.pred not in self.idb:
            return ProofNode(fact, None, ())
        if fact in seen:  # cannot happen for first derivations, guard anyway
            raise RuntimeError(f"cyclic support for {fact!r}")
        rule, body = self.support[fact]
        seen = seen | {fact}
        children = tuple(self.build(b, seen) for b in body)
        return ProofNode(fact, rule, children)


def prove(
    query: DatalogQuery,
    instance: Instance,
    answer: Sequence = (),
) -> Optional[ProofNode]:
    """A proof term for ``I ⊨ Q(answer)``, or None when it fails.

    The returned tree is rooted at the goal fact; its leaves are facts
    of ``instance``.
    """
    derivations = _Derivations(query.program, instance)
    goal_fact = Atom(query.goal, tuple(answer))
    if not derivations.state.has_tuple(query.goal, tuple(answer)):
        return None
    return derivations.build(goal_fact)


def verify_proof(
    proof: ProofNode, program: DatalogProgram, instance: Instance
) -> bool:
    """Independently check a proof term (the appendix's conditions).

    * leaves are facts of ``instance`` (or facts over EDB relations);
    * each internal node's fact is the head of its rule under some
      instantiation matching exactly its children's facts.
    """
    for node in proof.nodes():
        if node.is_leaf():
            if node.fact.pred in program.idb_predicates():
                return False
            if node.fact not in instance:
                return False
            continue
        rule = node.rule
        child_facts = Instance(c.fact for c in node.children)
        matched = False
        for hom in homomorphisms(rule.body, child_facts):
            if rule.head.substitute(hom) != node.fact:
                continue
            body = {a.substitute(hom) for a in rule.body}
            if body == {c.fact for c in node.children}:
                matched = True
                break
        if not matched:
            return False
    return True
