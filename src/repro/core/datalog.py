"""Datalog: rules, programs, queries and fragment classification (§2).

* :class:`Rule` — ``P(x̄) ← φ(x̄, ȳ)`` with the safety condition.
* :class:`DatalogProgram` — a finite set of rules; knows its IDB/EDB split,
  dependency graph, recursion, and the fragments the paper studies:
  Monadic Datalog (all IDBs unary) and Frontier-Guarded Datalog (head
  variables co-occur in a single *extensional* body atom).
* :class:`DatalogQuery` — a program plus a distinguished goal predicate.

Evaluation lives in :mod:`repro.core.evaluation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

import networkx as nx

from repro.core.atoms import Atom, atoms_variables
from repro.core.instance import Instance
from repro.core.terms import Variable
from repro.util.fresh import FreshNames


@dataclass(frozen=True)
class Rule:
    """A Datalog rule ``head ← body``.

    Safety: every head variable occurs in the body.  An empty body is
    permitted only for ground heads (unconditional facts).
    """

    head: Atom
    body: tuple[Atom, ...]

    def __init__(self, head: Atom, body: Iterable[Atom]) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        body_vars = atoms_variables(self.body)
        for var in head.variables():
            if var not in body_vars:
                raise ValueError(f"unsafe rule: {var} not in body of {self!r}")

    def variables(self) -> set[Variable]:
        return self.head.variables() | atoms_variables(self.body)

    def frontier(self) -> set[Variable]:
        """The head variables (the rule's frontier)."""
        return self.head.variables()

    def body_predicates(self) -> set[str]:
        return {a.pred for a in self.body}

    def is_frontier_guarded(self, edb: set[str]) -> bool:
        """All head variables co-occur in one extensional body atom.

        Rules with at most one head variable... still need a guard atom
        unless the frontier is empty.  Following the paper's convention,
        any MDL program counts as frontier-guarded; callers should check
        :meth:`DatalogProgram.is_frontier_guarded` which applies it.
        """
        front = self.frontier()
        if not front:
            return True
        return any(
            a.pred in edb and front <= a.variables() for a in self.body
        )

    def substitute(self, mapping: Mapping) -> "Rule":
        return Rule(
            self.head.substitute(mapping),
            tuple(a.substitute(mapping) for a in self.body),
        )

    def rename_apart(self, fresh: Optional[FreshNames] = None) -> "Rule":
        fresh = fresh or FreshNames("r")
        renaming = {v: Variable(fresh()) for v in self.variables()}
        return self.substitute(renaming)

    def relabel_predicates(self, renaming: Mapping[str, str]) -> "Rule":
        head = Atom(renaming.get(self.head.pred, self.head.pred), self.head.args)
        body = tuple(
            Atom(renaming.get(a.pred, a.pred), a.args) for a in self.body
        )
        return Rule(head, body)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(map(repr, self.body))
        return f"{self.head!r} <- {body}"


@dataclass(frozen=True)
class DatalogProgram:
    """A finite set of Datalog rules."""

    rules: tuple[Rule, ...]

    def __init__(self, rules: Iterable[Rule]) -> None:
        object.__setattr__(self, "rules", tuple(rules))

    # ------------------------------------------------------------------
    # signature split
    # ------------------------------------------------------------------
    def idb_predicates(self) -> set[str]:
        """Relation symbols occurring in some rule head."""
        return {r.head.pred for r in self.rules}

    def edb_predicates(self) -> set[str]:
        """Body relations that never occur in a head."""
        idb = self.idb_predicates()
        out: set[str] = set()
        for rule in self.rules:
            out |= {p for p in rule.body_predicates() if p not in idb}
        return out

    def predicates(self) -> set[str]:
        out = self.idb_predicates()
        for rule in self.rules:
            out |= rule.body_predicates()
        return out

    def rules_for(self, pred: str) -> list[Rule]:
        return [r for r in self.rules if r.head.pred == pred]

    def arity_of(self, pred: str) -> int:
        for rule in self.rules:
            if rule.head.pred == pred:
                return rule.head.arity
            for atom in rule.body:
                if atom.pred == pred:
                    return atom.arity
        raise KeyError(pred)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def dependency_graph(self) -> nx.DiGraph:
        """IDB dependency graph: edge P → R when P's rule body uses R."""
        idb = self.idb_predicates()
        graph = nx.DiGraph()
        graph.add_nodes_from(idb)
        for rule in self.rules:
            for atom in rule.body:
                if atom.pred in idb:
                    graph.add_edge(rule.head.pred, atom.pred)
        return graph

    def is_recursive(self) -> bool:
        graph = self.dependency_graph()
        return not nx.is_directed_acyclic_graph(graph)

    def is_monadic(self) -> bool:
        """Monadic Datalog: every IDB is unary."""
        return all(r.head.arity <= 1 for r in self.rules)

    def is_frontier_guarded(self) -> bool:
        """Frontier-guarded Datalog, with the paper's MDL convention.

        Every MDL program counts as frontier-guarded (§2: "we declare, as a
        convention, that any MDL program is Frontier-guarded").
        """
        if self.is_monadic():
            return True
        edb = self.edb_predicates()
        return all(r.is_frontier_guarded(edb) for r in self.rules)

    def fragment(self) -> str:
        """A human-readable fragment label."""
        if not self.is_recursive():
            return "nonrecursive"
        if self.is_monadic():
            return "MDL"
        if self.is_frontier_guarded():
            return "FGDL"
        return "Datalog"

    def max_body_size(self) -> int:
        return max((len(r.body) for r in self.rules), default=0)

    def max_rule_variables(self) -> int:
        return max((len(r.variables()) for r in self.rules), default=0)

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def relabel_idbs(self, suffix: str) -> "DatalogProgram":
        """Rename every IDB predicate with a suffix (disjointness, Thm 1)."""
        renaming = {p: f"{p}{suffix}" for p in self.idb_predicates()}
        return DatalogProgram(
            tuple(r.relabel_predicates(renaming) for r in self.rules)
        )

    def union(self, other: "DatalogProgram") -> "DatalogProgram":
        return DatalogProgram(self.rules + other.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "\n".join(map(repr, self.rules))


@dataclass(frozen=True)
class DatalogQuery:
    """A Datalog query ``(Π, Goal)`` (§2)."""

    program: DatalogProgram
    goal: str
    name: str = "Q"

    def __init__(
        self, program: DatalogProgram, goal: str, name: str = "Q"
    ) -> None:
        if goal not in program.idb_predicates():
            raise ValueError(f"goal {goal} is not an IDB of the program")
        object.__setattr__(self, "program", program)
        object.__setattr__(self, "goal", goal)
        object.__setattr__(self, "name", name)

    @property
    def arity(self) -> int:
        return self.program.arity_of(self.goal)

    def is_boolean(self) -> bool:
        return self.arity == 0

    def fragment(self) -> str:
        return self.program.fragment()

    def evaluate(
        self,
        instance: Instance,
        optimize: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> set[tuple]:
        """``Output(Q, I)``: the goal tuples of the least fixpoint.

        Evaluation is goal-directed: rules the goal does not depend on
        are pruned first (they cannot contribute goal tuples), then the
        SCC-stratified engine runs the rest dependencies-first.
        ``backend`` selects the evaluation engine (``None`` → the
        ambient :func:`repro.core.backend.default_backend`).

        With ``optimize=True`` (or the ambient
        :func:`repro.core.evaluation.set_default_optimize` default) the
        full :mod:`repro.analysis.optimize` pipeline runs first — dead
        code, specialization, inlining and magic sets — which is only
        goal-preserving on *extensional* instances; when ``instance``
        supplies facts for an intensional predicate we fall back to the
        plain goal-directed path and record the retreat on the active
        collector's ``optimize_fallbacks`` counter, so callers
        comparing optimized/plain runs can tell the optimizer was
        skipped rather than ineffective.
        """
        from repro.core import stats as _stats
        from repro.core.evaluation import (
            default_optimize,
            fixpoint,
            goal_directed_program,
        )

        if optimize is None:
            optimize = default_optimize()
        if optimize and (
            instance.predicates() & self.program.idb_predicates()
        ):
            # IDB facts in the input make magic sets/inlining unsound;
            # retreat to the plain path, but *say so*.
            optimize = False
            collector = _stats.active()
            if collector is not None:
                collector.optimize_fallbacks += 1
        if optimize:
            from repro.analysis.optimize import (
                OPTIMIZE_RULE_LIMIT,
                optimized_query_program,
            )

            if len(self.program.rules) > OPTIMIZE_RULE_LIMIT:
                program = goal_directed_program(self.program, self.goal)
                return set(
                    fixpoint(
                        program, instance, optimize=False, backend=backend
                    ).tuples(self.goal)
                )
            from repro.core.stats import suspended

            # analysis-side subsumption searches stay out of the
            # caller's evaluation counters
            with suspended():
                program = optimized_query_program(self.program, self.goal)
            return set(
                fixpoint(
                    program, instance, optimize=True, backend=backend
                ).tuples(self.goal)
            )
        program = goal_directed_program(self.program, self.goal)
        return set(
            fixpoint(
                program, instance, optimize=False, backend=backend
            ).tuples(self.goal)
        )

    def holds(self, instance: Instance, answer: Sequence = ()) -> bool:
        return tuple(answer) in self.evaluate(instance)

    def boolean(self, instance: Instance) -> bool:
        """Truth of a Boolean query (``Goal() ∈ FPEval``)."""
        return () in self.evaluate(instance)

    def relabel_idbs(self, suffix: str) -> "DatalogQuery":
        return DatalogQuery(
            self.program.relabel_idbs(suffix), f"{self.goal}{suffix}", self.name
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatalogQuery({self.name}, goal={self.goal})\n{self.program!r}"


def program_from_rules(*rules: Rule) -> DatalogProgram:
    """Varargs convenience constructor."""
    return DatalogProgram(rules)
