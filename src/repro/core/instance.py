"""Database instances: sets of facts with per-predicate indexes.

An :class:`Instance` is a set of facts over a schema (§2).  Internally
facts are stored as a map ``pred -> set of argument tuples`` which makes
joins, view application, and fixpoint evaluation efficient.  A secondary
index ``(pred, position, value) -> tuples`` is built lazily for pattern
matching and invalidated on mutation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.core.atoms import Atom, Fact
from repro.core.schema import Schema


class Instance:
    """A (finite) database instance.

    Supports the operations the paper uses pervasively: active domain
    computation, restriction to a sub-signature, unions, element renaming
    (homomorphic images), and sub-instance checks.
    """

    __slots__ = ("_tuples", "_index", "_index_dirty")

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._tuples: dict[str, set[tuple]] = defaultdict(set)
        self._index: dict[tuple, list[tuple]] = {}
        self._index_dirty = True
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # construction and mutation
    # ------------------------------------------------------------------
    @staticmethod
    def of(*facts: Fact) -> "Instance":
        """Varargs constructor: ``Instance.of(Fact("R", (1, 2)), ...)``."""
        return Instance(facts)

    @staticmethod
    def from_tuples(pred_tuples: dict[str, Iterable[Sequence]]) -> "Instance":
        """Build from ``{"R": [(1, 2), ...], ...}``."""
        inst = Instance()
        for pred, rows in pred_tuples.items():
            for row in rows:
                inst.add_tuple(pred, tuple(row))
        return inst

    def add(self, fact: Fact) -> bool:
        """Add a fact; returns True if it was new."""
        if not fact.is_ground():
            raise ValueError(f"cannot add non-ground atom {fact!r}")
        return self.add_tuple(fact.pred, fact.args)

    def add_tuple(self, pred: str, args: tuple) -> bool:
        """Add a fact given as predicate + argument tuple."""
        rows = self._tuples[pred]
        if args in rows:
            return False
        rows.add(args)
        self._index_dirty = True
        return True

    def update(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self.add(fact)

    def discard(self, fact: Fact) -> None:
        rows = self._tuples.get(fact.pred)
        if rows is not None and fact.args in rows:
            rows.remove(fact.args)
            self._index_dirty = True

    def copy(self) -> "Instance":
        clone = Instance()
        for pred, rows in self._tuples.items():
            if rows:
                clone._tuples[pred] = set(rows)
        return clone

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts as :class:`Atom` objects."""
        for pred, rows in self._tuples.items():
            for row in rows:
                yield Atom(pred, row)

    def tuples(self, pred: str) -> frozenset:
        """All argument tuples of relation ``pred`` (empty if absent)."""
        return frozenset(self._tuples.get(pred, ()))

    def predicates(self) -> set[str]:
        """Relation names with at least one fact."""
        return {p for p, rows in self._tuples.items() if rows}

    def schema(self) -> Schema:
        """Infer the schema of the stored facts."""
        return Schema.from_atoms(self.facts())

    def active_domain(self) -> set:
        """``adom(I)``: every element occurring in some fact."""
        dom: set = set()
        for rows in self._tuples.values():
            for row in rows:
                dom.update(row)
        return dom

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._tuples.values())

    def __bool__(self) -> bool:
        return any(self._tuples.values())

    def __contains__(self, fact: Fact) -> bool:
        rows = self._tuples.get(fact.pred)
        return rows is not None and fact.args in rows

    def has_tuple(self, pred: str, args: tuple) -> bool:
        rows = self._tuples.get(pred)
        return rows is not None and args in rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        preds = self.predicates() | other.predicates()
        return all(self.tuples(p) == other.tuples(p) for p in preds)

    def __hash__(self) -> int:  # instances are mutable; identity hash
        return id(self)

    def __le__(self, other: "Instance") -> bool:
        """Sub-instance check (fact-set inclusion)."""
        return all(
            self.tuples(p) <= other.tuples(p) for p in self.predicates()
        )

    def __or__(self, other: "Instance") -> "Instance":
        merged = self.copy()
        merged.update(other.facts())
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = len(self)
        preds = ", ".join(sorted(self.predicates()))
        return f"<Instance {n} facts over {{{preds}}}>"

    def pretty(self) -> str:
        """Multi-line human-readable rendering (sorted, stable)."""
        lines = []
        for pred in sorted(self.predicates()):
            for row in sorted(self._tuples[pred], key=repr):
                lines.append(f"{pred}({', '.join(map(repr, row))})")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # pattern matching (used by the homomorphism engine and FPEval)
    # ------------------------------------------------------------------
    def _build_index(self) -> None:
        self._index = defaultdict(list)
        for pred, rows in self._tuples.items():
            for row in rows:
                for pos, val in enumerate(row):
                    self._index[(pred, pos, val)].append(row)
        self._index_dirty = False

    def matching(
        self, pred: str, pattern: Sequence[Optional[Any]]
    ) -> Iterator[tuple]:
        """Yield tuples of ``pred`` agreeing with ``pattern``.

        ``pattern`` is a sequence where ``None`` means "any value".  Uses
        the positional index when some position is bound, otherwise scans.
        Repeated values in the pattern are enforced.
        """
        rows = self._tuples.get(pred)
        if not rows:
            return
        bound = [(i, v) for i, v in enumerate(pattern) if v is not None]
        if bound:
            if self._index_dirty:
                self._build_index()
            # Pick the most selective bound position.
            best: Optional[list[tuple]] = None
            for pos, val in bound:
                cands = self._index.get((pred, pos, val), [])
                if best is None or len(cands) < len(best):
                    best = cands
            candidates: Iterable[tuple] = best if best is not None else rows
        else:
            candidates = rows
        for row in candidates:
            if row not in rows:  # stale index entry after discard
                continue
            if all(row[i] == v for i, v in bound):
                yield row

    def count_matching(self, pred: str, pattern: Sequence[Optional[Any]]) -> int:
        return sum(1 for _ in self.matching(pred, pattern))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def restrict(self, predicates: Iterable[str]) -> "Instance":
        """Restriction to a sub-signature: ``I ↾ Σ'``."""
        keep = set(predicates)
        out = Instance()
        for pred, rows in self._tuples.items():
            if pred in keep and rows:
                out._tuples[pred] = set(rows)
        return out

    def drop(self, predicates: Iterable[str]) -> "Instance":
        """Remove all facts of the given predicates."""
        omit = set(predicates)
        return self.restrict(self.predicates() - omit)

    def map_elements(self, mapping: Callable[[Any], Any] | dict) -> "Instance":
        """Homomorphic image: apply ``mapping`` to every domain element.

        ``mapping`` may be a dict (elements absent from it are kept as-is)
        or a callable.
        """
        if isinstance(mapping, dict):
            fn = lambda x: mapping.get(x, x)  # noqa: E731
        else:
            fn = mapping
        out = Instance()
        for pred, rows in self._tuples.items():
            for row in rows:
                out.add_tuple(pred, tuple(fn(v) for v in row))
        return out

    def relabel_predicates(self, renaming: dict[str, str]) -> "Instance":
        """Rename relation symbols (absent names kept as-is)."""
        out = Instance()
        for pred, rows in self._tuples.items():
            target = renaming.get(pred, pred)
            for row in rows:
                out.add_tuple(target, row)
        return out

    def difference(self, other: "Instance") -> "Instance":
        """Facts of ``self`` not present in ``other``."""
        out = Instance()
        for pred, rows in self._tuples.items():
            extra = rows - set(other.tuples(pred))
            if extra:
                out._tuples[pred] = extra
        return out
