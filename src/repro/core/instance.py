"""Database instances: sets of facts with per-predicate indexes.

An :class:`Instance` is a set of facts over a schema (§2).  Internally
facts are stored as a map ``pred -> set of argument tuples`` which makes
joins, view application, and fixpoint evaluation efficient.  A secondary
index ``(pred, position, value) -> tuples`` plus exact cardinality
counts per index key are built lazily for pattern matching and then
maintained *incrementally*: adding a fact appends to the live index,
discarding one tombstones its rows, so fixpoint rounds that interleave
``add`` with ``matching`` never trigger full rebuilds.

Pattern slots use the :data:`ANY` sentinel for "match any value".
``None`` is an ordinary (indexable) data element, **not** a wildcard —
see the regression tests in ``tests/core/test_instance_index.py`` for
the bug this prevents.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core import stats as _stats
from repro.core.atoms import Atom, Fact
from repro.core.schema import Schema


class _AnySentinel:
    """The wildcard marker for pattern slots (singleton :data:`ANY`)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ANY"


ANY = _AnySentinel()
"""Wildcard pattern slot: matches every value, including ``None``."""


class Instance:
    """A (finite) database instance.

    Supports the operations the paper uses pervasively: active domain
    computation, restriction to a sub-signature, unions, element renaming
    (homomorphic images), and sub-instance checks.

    ``__eq__`` is structural and ``__hash__`` is consistent with it
    (computed from :meth:`frozen_key`); as with any mutable container,
    do not mutate an instance while it sits in a set or dict key.
    """

    __slots__ = ("_tuples", "_index", "_counts", "_index_live", "_dead")

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._tuples: dict[str, set[tuple]] = defaultdict(set)
        # (pred, pos, value) -> list of rows; built lazily, then kept
        # live across adds.  _counts holds the exact number of *live*
        # rows per key (tombstoned rows are excluded).  _dead counts
        # rows discarded since the last rebuild: when 0 the index lists
        # contain no stale entries and matching can skip its filter.
        self._index: dict[tuple, list[tuple]] = {}
        self._counts: dict[tuple, int] = {}
        self._index_live = False
        self._dead = 0
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # construction and mutation
    # ------------------------------------------------------------------
    @staticmethod
    def of(*facts: Fact) -> "Instance":
        """Varargs constructor: ``Instance.of(Fact("R", (1, 2)), ...)``."""
        return Instance(facts)

    @staticmethod
    def from_tuples(pred_tuples: dict[str, Iterable[Sequence]]) -> "Instance":
        """Build from ``{"R": [(1, 2), ...], ...}``."""
        inst = Instance()
        for pred, rows in pred_tuples.items():
            for row in rows:
                inst.add_tuple(pred, tuple(row))
        return inst

    def add(self, fact: Fact) -> bool:
        """Add a fact; returns True if it was new."""
        if not fact.is_ground():
            raise ValueError(f"cannot add non-ground atom {fact!r}")
        return self.add_tuple(fact.pred, fact.args)

    def add_tuple(self, pred: str, args: tuple) -> bool:
        """Add a fact given as predicate + argument tuple."""
        rows = self._tuples[pred]
        if args in rows:
            return False
        if any(a is ANY for a in args):
            raise ValueError(
                f"the ANY pattern sentinel is not a data value: {pred}{args!r}"
            )
        rows.add(args)
        if self._index_live:
            # Maintain the index in place instead of invalidating it.
            index = self._index
            counts = self._counts
            resurrected = False
            for pos, val in enumerate(args):
                key = (pred, pos, val)
                bucket = index.get(key)
                count = counts.get(key, 0)
                if bucket is None:
                    index[key] = [args]
                elif count >= len(bucket) or args not in bucket:
                    # count < len(bucket) means tombstones exist under
                    # this key; re-adding a tombstoned row must not
                    # duplicate its index entry.
                    bucket.append(args)
                else:
                    # The row is already in the bucket but was not live:
                    # this add resurrects a tombstoned row.  Its stale
                    # index entries become live again, so the row no
                    # longer counts against the staleness budget.
                    resurrected = True
                counts[key] = count + 1
            if resurrected and self._dead:
                self._dead -= 1
            if _stats._ACTIVE:
                _stats._ACTIVE[-1].index_incremental += 1
        return True

    def update(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self.add(fact)

    def discard(self, fact: Fact) -> None:
        rows = self._tuples.get(fact.pred)
        if rows is not None and fact.args in rows:
            rows.remove(fact.args)
            if self._index_live:
                # Tombstone: decrement counts, leave the stale rows in
                # the index lists (matching filters them while _dead>0).
                counts = self._counts
                for pos, val in enumerate(fact.args):
                    key = (fact.pred, pos, val)
                    remaining = counts.get(key, 0) - 1
                    if remaining > 0:
                        counts[key] = remaining
                    else:
                        counts.pop(key, None)
                self._dead += 1

    def copy(self) -> "Instance":
        clone = Instance()
        for pred, rows in self._tuples.items():
            if rows:
                clone._tuples[pred] = set(rows)
        return clone

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts as :class:`Atom` objects."""
        for pred, rows in self._tuples.items():
            for row in rows:
                yield Atom(pred, row)

    def tuples(self, pred: str) -> frozenset:
        """All argument tuples of relation ``pred`` (empty if absent)."""
        return frozenset(self._tuples.get(pred, ()))

    def size(self, pred: str) -> int:
        """Number of facts of relation ``pred`` — O(1)."""
        rows = self._tuples.get(pred)
        return len(rows) if rows is not None else 0

    def predicates(self) -> set[str]:
        """Relation names with at least one fact."""
        return {p for p, rows in self._tuples.items() if rows}

    def schema(self) -> Schema:
        """Infer the schema of the stored facts."""
        return Schema.from_atoms(self.facts())

    def active_domain(self) -> set:
        """``adom(I)``: every element occurring in some fact."""
        dom: set = set()
        for rows in self._tuples.values():
            for row in rows:
                dom.update(row)
        return dom

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._tuples.values())

    def __bool__(self) -> bool:
        return any(self._tuples.values())

    def __contains__(self, fact: Fact) -> bool:
        rows = self._tuples.get(fact.pred)
        return rows is not None and fact.args in rows

    def has_tuple(self, pred: str, args: tuple) -> bool:
        rows = self._tuples.get(pred)
        return rows is not None and args in rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        preds = self.predicates() | other.predicates()
        return all(self.tuples(p) == other.tuples(p) for p in preds)

    def frozen_key(self) -> frozenset:
        """Immutable structural snapshot: ``frozenset`` of (pred, row).

        Two instances are ``==`` iff their frozen keys are equal, so
        this is the safe thing to deduplicate on (sets of visited
        states in ``automata/``, ``games/``, ``determinacy/``) — it
        stays valid even if the instance mutates afterwards.
        """
        return frozenset(
            (pred, row)
            for pred, rows in self._tuples.items()
            for row in rows
        )

    def __hash__(self) -> int:
        # Consistent with structural __eq__ (equal instances hash
        # equal).  O(n): prefer frozen_key() for long-lived set/dict
        # membership of instances that may still mutate.
        return hash(self.frozen_key())

    def __le__(self, other: "Instance") -> bool:
        """Sub-instance check (fact-set inclusion)."""
        return all(
            self.tuples(p) <= other.tuples(p) for p in self.predicates()
        )

    def __or__(self, other: "Instance") -> "Instance":
        merged = self.copy()
        merged.update(other.facts())
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = len(self)
        preds = ", ".join(sorted(self.predicates()))
        return f"<Instance {n} facts over {{{preds}}}>"

    def pretty(self) -> str:
        """Multi-line human-readable rendering (sorted, stable)."""
        lines = []
        for pred in sorted(self.predicates()):
            for row in sorted(self._tuples[pred], key=repr):
                lines.append(f"{pred}({', '.join(map(repr, row))})")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # pattern matching (used by the homomorphism engine and FPEval)
    # ------------------------------------------------------------------
    def _build_index(self) -> None:
        index: dict[tuple, list[tuple]] = defaultdict(list)
        counts: dict[tuple, int] = defaultdict(int)
        for pred, rows in self._tuples.items():
            for row in rows:
                for pos, val in enumerate(row):
                    key = (pred, pos, val)
                    index[key].append(row)
                    counts[key] += 1
        self._index = dict(index)
        self._counts = dict(counts)
        self._index_live = True
        self._dead = 0
        if _stats._ACTIVE:
            _stats._ACTIVE[-1].index_rebuilds += 1

    def matching(
        self, pred: str, pattern: Sequence[Any]
    ) -> Iterator[tuple]:
        """Yield tuples of ``pred`` agreeing with ``pattern``.

        ``pattern`` is a sequence where the :data:`ANY` sentinel means
        "any value"; every other entry (including ``None``) must match
        exactly.  Uses the positional index when some position is
        bound, otherwise scans.  Repeated values in the pattern are
        enforced.
        """
        rows = self._tuples.get(pred)
        if not rows:
            return
        bound = [(i, v) for i, v in enumerate(pattern) if v is not ANY]
        if bound:
            if not self._index_live:
                self._build_index()
            # Pick the most selective bound position by live count.
            counts = self._counts
            best_key = None
            best_count = -1
            for pos, val in bound:
                count = counts.get((pred, pos, val), 0)
                if count == 0:
                    return  # exact: no live row matches this position
                if best_count < 0 or count < best_count:
                    best_count = count
                    best_key = (pred, pos, val)
            candidates: Iterable[tuple] = self._index.get(best_key, ())
        else:
            candidates = rows
        if self._dead:
            # Stale entries linger in index lists until the next full
            # rebuild; filter them out against the authoritative rows.
            for row in candidates:
                if row in rows and all(row[i] == v for i, v in bound):
                    yield row
        else:
            for row in candidates:
                if all(row[i] == v for i, v in bound):
                    yield row

    def count_matching(self, pred: str, pattern: Sequence[Any]) -> int:
        """Exact number of tuples matching ``pattern``.

        O(1) for patterns binding at most one position (the common case
        in fewest-candidates-first join ordering); exact enumeration
        otherwise.
        """
        rows = self._tuples.get(pred)
        if not rows:
            return 0
        bound = [(i, v) for i, v in enumerate(pattern) if v is not ANY]
        if not bound:
            return len(rows)
        if not self._index_live:
            self._build_index()
        if len(bound) == 1:
            pos, val = bound[0]
            return self._counts.get((pred, pos, val), 0)
        return sum(1 for _ in self.matching(pred, pattern))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def restrict(self, predicates: Iterable[str]) -> "Instance":
        """Restriction to a sub-signature: ``I ↾ Σ'``."""
        keep = set(predicates)
        out = Instance()
        for pred, rows in self._tuples.items():
            if pred in keep and rows:
                out._tuples[pred] = set(rows)
        return out

    def drop(self, predicates: Iterable[str]) -> "Instance":
        """Remove all facts of the given predicates."""
        omit = set(predicates)
        return self.restrict(self.predicates() - omit)

    def map_elements(self, mapping: Callable[[Any], Any] | dict) -> "Instance":
        """Homomorphic image: apply ``mapping`` to every domain element.

        ``mapping`` may be a dict (elements absent from it are kept as-is)
        or a callable.
        """
        if isinstance(mapping, dict):
            fn = lambda x: mapping.get(x, x)  # noqa: E731
        else:
            fn = mapping
        out = Instance()
        for pred, rows in self._tuples.items():
            for row in rows:
                out.add_tuple(pred, tuple(fn(v) for v in row))
        return out

    def relabel_predicates(self, renaming: dict[str, str]) -> "Instance":
        """Rename relation symbols (absent names kept as-is)."""
        out = Instance()
        for pred, rows in self._tuples.items():
            target = renaming.get(pred, pred)
            for row in rows:
                out.add_tuple(target, row)
        return out

    def difference(self, other: "Instance") -> "Instance":
        """Facts of ``self`` not present in ``other``."""
        out = Instance()
        for pred, rows in self._tuples.items():
            extra = rows - set(other.tuples(pred))
            if extra:
                out._tuples[pred] = extra
        return out
