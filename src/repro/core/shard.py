"""Sharded parallel fixpoint execution, planned by the static analysis.

:func:`sharded_fixpoint` walks the SCC condensation in evaluation
order, consults the :mod:`repro.analysis.shard` plan, and executes
each stratum by its classification:

* **communication_free** — every relation the stratum reads or writes
  is hash-partitioned on the planned key position
  (:func:`~repro.analysis.shard.shard_of`), each worker closes its
  partition with a completely ordinary backend fixpoint of the stratum
  subprogram, and the parent unions the results.  The plan guarantees
  the union equals the global stratum fixpoint: every rule's pivot
  variable sits at the key position of the head and of every body
  atom, so all facts that can join live on one worker;
* **exchange_required** — the relevant state is broadcast, round 0
  splits the stratum's rules round-robin across workers (heads renamed
  to scratch predicates so one application never feeds back locally),
  and every later semi-naive round evaluates the *delta program* —
  each rule expanded per tracked body position with that atom renamed
  to a delta predicate — against the full state plus a hash-sliced
  delta.  Fresh facts the parent deduplicates are re-broadcast, which
  is the exchange the plan predicted (``shard_exchanged_rows``);
* **sequential** — evaluated on the parent process exactly as today.

Workers are plain ``multiprocessing`` processes speaking a tiny
pipe protocol (``reset`` / ``extend`` / ``fixpoint`` / ``stop``); they
run the same ``interpreted``/``columnar`` backend seam as the parent
and ship their :class:`~repro.core.stats.EngineStats` back with every
result (worker fixpoint rounds surface as ``shard_local_rounds``).
Small inputs never pay any of this: below :data:`SHARD_MIN_FACTS`
total (or per-stratum) facts the plain single-process path runs, so
``--shards`` is safe to leave on ambiently.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Mapping, Optional, Sequence

from repro.core import stats as _stats
from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram, Rule
from repro.core.instance import Instance
from repro.core.stats import EngineStats

#: below this many facts (whole instance, or the slice a stratum
#: reads) sharding is pure overhead — stay single-process
SHARD_MIN_FACTS = 256

#: scratch-predicate prefixes of the exchange protocol; double
#: underscores keep them out of every user namespace
_OUT = "__shard_out__"
_DELTA = "__shard_delta__"

#: ambient default for ``fixpoint(..., shards=None)``; set by the CLI
#: and the evidence workers (mirrors ``set_default_optimize``)
_DEFAULT_SHARDS = 0


def set_default_shards(value: int) -> int:
    """Set the ambient worker count for ``shards=None``; returns the
    previous value so callers can restore it."""
    global _DEFAULT_SHARDS
    previous = _DEFAULT_SHARDS
    _DEFAULT_SHARDS = max(0, int(value))
    return previous


def default_shards() -> int:
    """The current ambient shard count (0 = single-process)."""
    return _DEFAULT_SHARDS


def _worker_main(conn: Any) -> None:
    """One shard worker: hold relations, run backend fixpoints on demand.

    Forked workers inherit the parent's ambient collectors, guards and
    shard default; all of it is reset so a worker is an ordinary
    single-process engine whose only channel back is the pipe.
    """
    from repro.analysis.shard import set_shard_guard
    from repro.core import evaluation
    from repro.core.backend import resolve_backend

    _stats._ACTIVE.clear()
    evaluation.set_cost_guard(None)
    set_default_shards(0)
    set_shard_guard(None)

    relations: dict[str, set[tuple[Any, ...]]] = {}
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return  # parent died or closed the pipe: exit quietly
        op = message[0]
        try:
            if op == "stop":
                return
            elif op == "reset":
                relations = {}
            elif op == "extend":
                for pred, rows in message[1].items():
                    relations.setdefault(pred, set()).update(
                        tuple(row) for row in rows
                    )
            elif op == "fixpoint":
                _, rules, extra, return_preds, backend, strategy, \
                    ordering = message
                merged = {
                    pred: list(rows) for pred, rows in relations.items()
                }
                for pred, rows in extra.items():
                    merged.setdefault(pred, []).extend(
                        tuple(row) for row in rows
                    )
                stats = EngineStats()
                result = resolve_backend(backend).fixpoint(
                    DatalogProgram(tuple(rules)),
                    Instance.from_tuples(merged),
                    strategy=strategy,
                    stats=stats,
                    ordering=ordering,
                )
                payload = {
                    pred: sorted(result.tuples(pred), key=repr)
                    for pred in return_preds
                }
                conn.send(("ok", payload, stats.to_dict()))
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown op {op!r}"))
        except Exception:
            conn.send(("error", traceback.format_exc()))


class _WorkerPool:
    """``shards`` persistent worker processes behind duplex pipes."""

    def __init__(self, shards: int) -> None:
        # fork shares the parsed program/instance pages copy-on-write;
        # fall back to the platform default where fork is unavailable
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        self.shards = shards
        self.connections = []
        self.processes = []
        for _ in range(shards):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            self.connections.append(parent_conn)
            self.processes.append(process)

    def send(self, worker: int, message: tuple) -> None:
        self.connections[worker].send(message)

    def recv(self, worker: int) -> tuple:
        reply = self.connections[worker].recv()
        if reply[0] == "error":
            raise RuntimeError(
                f"shard worker {worker} failed:\n{reply[1]}"
            )
        return reply

    def broadcast(self, message: tuple) -> None:
        for conn in self.connections:
            conn.send(message)

    def close(self) -> None:
        for conn in self.connections:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for process in self.processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5)


def _relevant_predicates(rules: Sequence[Rule]) -> set[str]:
    preds: set[str] = set()
    for rule in rules:
        preds.add(rule.head.pred)
        preds |= rule.body_predicates()
    return preds


def _slice_of(
    state: Instance, preds: set[str]
) -> dict[str, list[tuple[Any, ...]]]:
    return {
        pred: sorted(state.tuples(pred), key=repr)
        for pred in sorted(preds)
        if state.size(pred)
    }


def _round0_rules(rules: Sequence[Rule]) -> list[Rule]:
    """Stratum rules with heads renamed to scratch output predicates."""
    return [
        Rule(Atom(_OUT + rule.head.pred, rule.head.args), rule.body)
        for rule in rules
    ]


def _delta_rules(rules: Sequence[Rule], tracked: set[str]) -> list[Rule]:
    """The semi-naive delta expansion of ``rules`` over ``tracked``.

    One rule per tracked body position, that atom renamed to the delta
    predicate and the head to the scratch output — any new derivation
    uses at least one fresh fact, and the remaining positions join the
    full (already-extended) state, so firing these once per round is
    exactly one semi-naive step.
    """
    out: list[Rule] = []
    for rule in rules:
        for i, atom in enumerate(rule.body):
            if atom.pred not in tracked:
                continue
            body = tuple(
                Atom(_DELTA + a.pred, a.args) if j == i else a
                for j, a in enumerate(rule.body)
            )
            out.append(Rule(Atom(_OUT + rule.head.pred, rule.head.args), body))
    return out


def _merge_worker_stats(
    collected: EngineStats, payload: Mapping[str, Any]
) -> None:
    """Fold one worker's counters in, rebasing its fixpoint rounds.

    A worker's rounds are *local* rounds — the parent's own
    ``fixpoint_rounds`` would double-count parallel work, so they move
    to ``shard_local_rounds`` before the merge.
    """
    stats = EngineStats.from_dict(dict(payload))
    stats.shard_local_rounds += stats.fixpoint_rounds
    stats.fixpoint_rounds = 0
    collected.merge(stats)


def sharded_fixpoint(
    program: DatalogProgram,
    instance: Instance,
    shards: int,
    strategy: str = "stratified",
    stats: Optional[EngineStats] = None,
    ordering: str = "auto",
    backend: Optional[str] = None,
) -> Instance:
    """``FPEval(Π, I)`` across ``shards`` worker processes.

    Produces exactly the single-process result (the evidence suite is
    certified against the independent replayer to prove it); falls
    back to the plain backend path whenever sharding cannot pay —
    fewer than 2 shards, no rules, or an instance below
    :data:`SHARD_MIN_FACTS`.
    """
    from repro.analysis.shard import (
        COMMUNICATION_FREE,
        SEQUENTIAL,
        CostParameters,
        active_shard_guard,
        shard_of,
        shard_report,
    )
    from repro.core.backend import resolve_backend
    from repro.analysis.dependency import DependencyGraph

    engine = resolve_backend(backend)
    if shards <= 1 or not program.rules or len(instance) < SHARD_MIN_FACTS:
        return engine.fixpoint(
            program, instance, strategy=strategy, stats=stats,
            ordering=ordering,
        )

    collector = stats if stats is not None else _stats.active()
    collected = EngineStats()
    with _stats.suspended():
        # planning is analysis, not evaluation: keep it out of counters
        dep = DependencyGraph(program)
        plan = shard_report(
            program,
            parameters=CostParameters.assumed_for(program),
            dependency=dep,
            workers=shards,
        )
    guard = active_shard_guard()

    state = instance.copy()
    pool: Optional[_WorkerPool] = None
    try:
        for scc in dep.sccs:
            rules = [program.rules[i] for i in scc.rule_indices]
            if not rules:
                continue
            stratum_plan = plan.plan_of(next(iter(scc.predicates)))
            relevant = _relevant_predicates(rules)
            slice_size = sum(state.size(pred) for pred in relevant)
            classification = (
                stratum_plan.classification
                if stratum_plan is not None
                else SEQUENTIAL
            )
            keys = stratum_plan.keys if stratum_plan is not None else {}
            run_local = (
                classification == SEQUENTIAL
                or slice_size < SHARD_MIN_FACTS
                or (classification == COMMUNICATION_FREE
                    and not (relevant <= keys.keys()))
            )
            if run_local:
                local = engine.fixpoint(
                    DatalogProgram(tuple(rules)),
                    state.restrict(relevant),
                    strategy=strategy,
                    stats=collected,
                    ordering=ordering,
                )
                for pred in scc.predicates:
                    for row in local.tuples(pred):
                        state.add_tuple(pred, row)
                continue

            if pool is None:
                pool = _WorkerPool(shards)
                collected.shard_workers += shards

            if classification == COMMUNICATION_FREE:
                partitions: list[dict[str, list[tuple[Any, ...]]]] = [
                    {} for _ in range(shards)
                ]
                for pred in sorted(relevant):
                    key = keys[pred]
                    for row in state.tuples(pred):
                        worker = shard_of(row[key], shards)
                        partitions[worker].setdefault(pred, []).append(row)
                return_preds = sorted(scc.predicates)
                for worker in range(shards):
                    pool.send(worker, ("reset",))
                    pool.send(worker, ("extend", partitions[worker]))
                    pool.send(worker, (
                        "fixpoint", tuple(rules), {}, return_preds,
                        backend, strategy, ordering,
                    ))
                per_worker: dict[int, list[tuple[str, tuple]]] = {}
                for worker in range(shards):
                    _, payload, worker_stats = pool.recv(worker)
                    _merge_worker_stats(collected, worker_stats)
                    derived: list[tuple[str, tuple]] = []
                    for pred, rows in payload.items():
                        for row in rows:
                            state.add_tuple(pred, tuple(row))
                            derived.append((pred, tuple(row)))
                    per_worker[worker] = derived
                if guard is not None and stratum_plan is not None:
                    guard.check_stratum(stratum_plan, shards, per_worker)
                continue

            # ---------------------------------------- exchange_required
            tracked = set(scc.predicates)
            pool.broadcast(("reset",))
            pool.broadcast(("extend", _slice_of(state, relevant)))
            round0 = _round0_rules(rules)
            out_preds = sorted({rule.head.pred for rule in round0})
            active_workers = []
            for worker in range(shards):
                share = tuple(round0[worker::shards])
                if not share:
                    continue
                pool.send(worker, (
                    "fixpoint", share, {},
                    sorted({rule.head.pred for rule in share}),
                    backend, strategy, ordering,
                ))
                active_workers.append(worker)
            fresh: dict[str, set[tuple[Any, ...]]] = {}
            for worker in active_workers:
                _, payload, worker_stats = pool.recv(worker)
                _merge_worker_stats(collected, worker_stats)
                for out_pred, rows in payload.items():
                    pred = out_pred[len(_OUT):]
                    for row in rows:
                        row = tuple(row)
                        if state.add_tuple(pred, row):
                            fresh.setdefault(pred, set()).add(row)
            delta_program = _delta_rules(rules, tracked)
            while fresh and delta_program:
                fresh_rows = {
                    pred: sorted(rows, key=repr)
                    for pred, rows in fresh.items()
                }
                exchanged = sum(len(rows) for rows in fresh.values())
                collected.shard_exchanged_rows += exchanged * (shards - 1)
                pool.broadcast(("extend", fresh_rows))
                slices: list[dict[str, list[tuple[Any, ...]]]] = [
                    {} for _ in range(shards)
                ]
                for pred, rows in fresh_rows.items():
                    for row in rows:
                        worker = shard_of(row, shards)
                        slices[worker].setdefault(
                            _DELTA + pred, []
                        ).append(row)
                round_workers = []
                for worker in range(shards):
                    if not slices[worker]:
                        continue
                    pool.send(worker, (
                        "fixpoint", tuple(delta_program), slices[worker],
                        out_preds, backend, strategy, ordering,
                    ))
                    round_workers.append(worker)
                fresh = {}
                for worker in round_workers:
                    _, payload, worker_stats = pool.recv(worker)
                    _merge_worker_stats(collected, worker_stats)
                    for out_pred, rows in payload.items():
                        pred = out_pred[len(_OUT):]
                        for row in rows:
                            row = tuple(row)
                            if state.add_tuple(pred, row):
                                fresh.setdefault(pred, set()).add(row)
    finally:
        if pool is not None:
            pool.close()

    if collector is not None:
        collector.merge(collected)
    return state
