"""Engine instrumentation: counters for the homomorphism/fixpoint core.

An :class:`EngineStats` object aggregates the low-level work the engine
performs — homomorphism searches started, candidate rows scanned,
positional-index rebuilds, fixpoint rounds, join-plan cache traffic and
per-phase wall time.  Collection is strictly opt-in: when no collector
is active the hot paths pay (at most) one ``is None`` check.

Two ways to collect:

* pass ``stats=EngineStats()`` explicitly to :func:`repro.core.evaluation.fixpoint`
  or :func:`repro.core.homomorphism.homomorphisms`; or
* activate a collector ambiently with :func:`collecting` — everything the
  engine does inside the ``with`` block is attributed to it.  The CLI's
  ``--stats`` flag and the benchmark harness use this route.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, fields
from typing import Iterator, Optional

#: Integer counter fields that :meth:`EngineStats.merge` sums.  Every
#: dataclass field must either appear here or be special-cased in
#: ``merge()``/``to_dict()``/``from_dict()`` — ``merge`` raises
#: ``TypeError`` otherwise, so adding a new counter without wiring its
#: merge strategy fails loudly instead of silently dropping data when
#: worker-process stats are folded back into the parent.
_SUMMED_FIELDS = frozenset({
    "hom_calls",
    "search_steps",
    "rows_scanned",
    "index_rebuilds",
    "index_incremental",
    "fixpoint_rounds",
    "facts_derived",
    "plan_cache_hits",
    "plan_cache_misses",
    "optimize_fallbacks",
    "join_build_rows",
    "join_probe_rows",
    "join_output_rows",
    "columnar_batches",
    "cost_checks",
    "cost_bounds_checked",
    "cost_violations",
    "auto_backend_interpreted",
    "auto_backend_columnar",
    "ivm_inserted",
    "ivm_deleted",
    "ivm_rederived",
    "ivm_rounds",
    "maintain_counting_strata",
    "maintain_dred_strata",
    "maintain_skipped_rederive",
    "shard_workers",
    "shard_exchanged_rows",
    "shard_local_rounds",
})


@dataclass
class EngineStats:
    """Counters for one measured region of engine work.

    All counters are cumulative totals for the region during which the
    object was active (a benchmark run may accumulate several rounds).
    """

    hom_calls: int = 0            # homomorphism searches started
    search_steps: int = 0         # backtracking frames pushed
    rows_scanned: int = 0         # candidate rows examined by _search
    index_rebuilds: int = 0       # full positional-index (re)builds
    index_incremental: int = 0    # rows added to a live index in place
    fixpoint_rounds: int = 0      # naive/semi-naive iterations
    facts_derived: int = 0        # new facts added by fixpoint rounds
    plan_cache_hits: int = 0      # join plans reused across rounds
    plan_cache_misses: int = 0    # join plans resolved fresh
    optimize_fallbacks: int = 0   # optimized evaluate() retreats taken
    join_build_rows: int = 0      # rows hashed into build tables (columnar)
    join_probe_rows: int = 0      # batch rows probed against tables (columnar)
    join_output_rows: int = 0     # join matches materialized (columnar)
    columnar_batches: int = 0     # delta batches pushed through plans
    cost_checks: int = 0          # fixpoints audited by the cost guard
    cost_bounds_checked: int = 0  # predicate bounds compared to measured
    cost_violations: int = 0      # measured sizes exceeding a bound (!)
    auto_backend_interpreted: int = 0  # auto backend picked interpreted
    auto_backend_columnar: int = 0     # auto backend picked columnar
    ivm_inserted: int = 0         # facts added by maintenance rounds
    ivm_deleted: int = 0          # facts removed by maintenance rounds
    ivm_rederived: int = 0        # DRed suspects saved by rederivation
    ivm_rounds: int = 0           # incremental maintenance rounds run
    maintain_counting_strata: int = 0  # strata maintained by counting
    maintain_dred_strata: int = 0      # strata maintained by DRed
    maintain_skipped_rederive: int = 0  # DRed deletion phases skipped
    shard_workers: int = 0        # worker processes spawned by sharded runs
    shard_exchanged_rows: int = 0  # delta rows re-shuffled between rounds
    shard_local_rounds: int = 0   # per-worker fixpoint rounds (rebased)
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall time under ``phase_seconds[name]``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + elapsed
            )

    def merge(
        self, other: "EngineStats", *, allow_unknown: bool = False
    ) -> None:
        """Add ``other``'s counters into this object.

        Field-driven so it can never silently skip a counter: a field
        that is neither in ``_SUMMED_FIELDS`` nor handled explicitly
        raises ``TypeError``.  This is what lets worker processes ship
        their stats home as dicts and have the parent fold them in
        without losing anything.

        ``allow_unknown=True`` skips unhandled fields instead — for
        report tooling folding in stats from a newer schema, where
        "render what we understand" beats failing mid-report.
        """
        for f in fields(self):
            if f.name in _SUMMED_FIELDS:
                setattr(
                    self,
                    f.name,
                    getattr(self, f.name) + getattr(other, f.name, 0),
                )
            elif f.name == "phase_seconds":
                for name, secs in other.phase_seconds.items():
                    self.phase_seconds[name] = (
                        self.phase_seconds.get(name, 0.0) + secs
                    )
            elif not allow_unknown:
                raise TypeError(
                    f"EngineStats.merge: no merge strategy for field "
                    f"{f.name!r}; add it to _SUMMED_FIELDS or handle it "
                    f"explicitly in merge()/to_dict()/from_dict()"
                )

    def to_dict(self) -> dict:
        """JSON-ready snapshot; the inverse of :meth:`from_dict`.

        Field-driven, so a newly added counter shows up here (and
        round-trips through worker processes) automatically.
        """
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = dict(value) if isinstance(value, dict) else value
        return out

    # historical name, kept for benchmark extra_info consumers
    as_dict = to_dict

    @classmethod
    def from_dict(
        cls, data: dict, *, allow_unknown: bool = False
    ) -> "EngineStats":
        """Rebuild a collector from :meth:`to_dict` output.

        Strict by default: a key this version doesn't know raises
        ``ValueError`` naming the offenders, so a worker or manifest
        produced by a *newer* schema fails loudly instead of silently
        dropping its counters mid-run.  Report tooling that prefers
        "load what we understand" passes ``allow_unknown=True`` to
        ignore the extras.  Missing keys keep their defaults either way.
        """
        known = {f.name for f in fields(cls)}
        if not allow_unknown:
            unknown = sorted(set(data) - known)
            if unknown:
                raise ValueError(
                    f"EngineStats.from_dict: unknown counter(s) "
                    f"{', '.join(map(repr, unknown))}; produced by a newer "
                    f"schema? Pass allow_unknown=True to ignore them."
                )
        kwargs = {
            name: (dict(value) if isinstance(value, dict) else value)
            for name, value in data.items()
            if name in known
        }
        return cls(**kwargs)

    def render(self) -> str:
        """Human-readable table (the CLI's ``--stats`` output)."""
        rows = [
            ("homomorphism calls", self.hom_calls),
            ("search steps", self.search_steps),
            ("rows scanned", self.rows_scanned),
            ("index rebuilds", self.index_rebuilds),
            ("index rows added in place", self.index_incremental),
            ("fixpoint rounds", self.fixpoint_rounds),
            ("facts derived", self.facts_derived),
            ("join-plan cache hits", self.plan_cache_hits),
            ("join-plan cache misses", self.plan_cache_misses),
            ("optimize fallbacks", self.optimize_fallbacks),
            ("join build rows", self.join_build_rows),
            ("join probe rows", self.join_probe_rows),
            ("join output rows", self.join_output_rows),
            ("columnar batches", self.columnar_batches),
            ("cost-guard checks", self.cost_checks),
            ("cost bounds checked", self.cost_bounds_checked),
            ("cost bound violations", self.cost_violations),
            ("auto picks: interpreted", self.auto_backend_interpreted),
            ("auto picks: columnar", self.auto_backend_columnar),
            ("ivm facts inserted", self.ivm_inserted),
            ("ivm facts deleted", self.ivm_deleted),
            ("ivm facts rederived", self.ivm_rederived),
            ("ivm maintenance rounds", self.ivm_rounds),
            ("maintain: counting strata", self.maintain_counting_strata),
            ("maintain: dred strata", self.maintain_dred_strata),
            ("maintain: skipped rederive", self.maintain_skipped_rederive),
            ("shard workers spawned", self.shard_workers),
            ("shard rows exchanged", self.shard_exchanged_rows),
            ("shard local rounds", self.shard_local_rounds),
        ]
        lines = ["engine stats:"]
        for label, value in rows:
            lines.append(f"  {label:<26} {value}")
        for name, secs in sorted(self.phase_seconds.items()):
            lines.append(f"  phase {name:<20} {secs * 1000:.2f} ms")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# ambient collector (a stack, so collections nest cleanly)
# ---------------------------------------------------------------------------
_ACTIVE: list[EngineStats] = []


def active() -> Optional[EngineStats]:
    """The innermost active collector, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def collecting(stats: Optional[EngineStats] = None) -> Iterator[EngineStats]:
    """Activate ``stats`` (a fresh object if None) for the block."""
    if stats is None:
        stats = EngineStats()
    _ACTIVE.append(stats)
    try:
        yield stats
    finally:
        _ACTIVE.pop()


@contextmanager
def suspended() -> Iterator[EngineStats]:
    """Shadow the active collector with a throwaway one for the block.

    Analysis-side homomorphism work — rule subsumption inside the
    optimizer, most prominently — must not pollute the *evaluation*
    counters a caller is collecting, or before/after engine comparisons
    measure the analysis instead of the plan it produced.  The scratch
    collector still nests cleanly and is yielded for callers that want
    to inspect the suppressed counts.
    """
    with collecting(EngineStats()) as scratch:
        yield scratch


def maybe_collecting(stats: Optional[EngineStats]):
    """``collecting(stats)`` when given a collector, else a no-op context.

    Lets engine entry points accept an optional ``stats`` argument
    without duplicating both code paths.
    """
    if stats is None:
        return nullcontext()
    return collecting(stats)
