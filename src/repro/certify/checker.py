"""The independent certificate checker.

A certificate is a JSON-able dict::

    {"schema": 1, "claims": [{"type": ..., ...payload}], "meta": {...}}

:func:`check_certificate` decodes every claim and validates it using
only the :mod:`repro.certify.replay` primitives — naive evaluation and
direct homomorphism replay, never the engine's fixpoint fast paths.
The result lists every failure with its claim index, so a corrupted
certificate reports *what* broke, not just that something did.

Claim vocabulary (see :mod:`repro.certify.emit` for the builders):

==============================  =============================================
type                            verified statement
==============================  =============================================
``membership``                  ``answer ∈ Q(I)`` (or ``∉``), naive recompute;
                                a shipped CQ hom witness is replayed instead
``query_output``                ``Q(I)`` equals the shipped output exactly
``hom_witness``                 a shipped mapping is a homomorphism
``no_hom``                      exhaustive search finds no homomorphism
``instance_subset``             every fact of the left is in the right
``view_image``                  ``V(I)`` equals the shipped image exactly
``ucq_containment``             ``left ⊑ right`` via canonical databases
``tree_decomposition``          bags/edges form a valid decomposition of
                                the facts within the claimed width
``not_monotonically_determined``  ``Q(I₁) ∋ t``, ``Q(I₂) ∌ t``,
                                ``V(I₁) ⊆ V(I₂)``
``monotone_rewriting``          the rewriting is sound (unfolding ⊑ Q via
                                canonical databases) and complete on every
                                disjunct's canonical database
``rewriting_sample``            ``R(V(I)) = Q(I)`` on a seeded instance
                                stream (sampled evidence, flagged as such)
``bounded_unfolding``           vacuous-recursion removals replay, the
                                remainder is nonrecursive, and the shipped
                                UCQ is sound for it (plus sampled converse)
``program_equivalence``         original and optimized programs agree on
                                the goal relation, replayed on shipped
                                witnesses + a seeded instance stream over
                                the (extensional-only) claimed schema
``ivm_state``                   an incrementally maintained materialization
                                equals the naive from-scratch fixpoint of
                                its base instance, every relation exact
==============================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Optional

from repro.certify import replay
from repro.certify.serialize import (
    CertificateFormatError,
    Relations,
    decode_atom,
    decode_mapping,
    decode_program,
    decode_query,
    decode_relations,
    decode_term,
    decode_tuple,
    decode_views,
)
from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogQuery, Rule
from repro.core.terms import Variable
from repro.core.ucq import UCQ, as_ucq
from repro.views.view import ViewSet

#: bump when the certificate format changes incompatibly
CERT_SCHEMA = 3

#: every schema this checker can validate.  Schemas 2 and 3 only *add*
#: claim types (``program_equivalence``, then ``ivm_state``), so older
#: certificates remain fully checkable.
SUPPORTED_SCHEMAS = frozenset({1, 2, CERT_SCHEMA})

#: cap on checker-side unfoldings, mirroring the emitters' caps
UNFOLD_LIMIT = 512


@dataclass(frozen=True)
class CheckResult:
    """Outcome of validating one certificate."""

    valid: bool
    claims: int
    failures: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "valid": self.valid,
            "claims": self.claims,
            "failures": list(self.failures),
        }


class ClaimFailure(Exception):
    """One claim does not hold (carries the reason)."""


# ---------------------------------------------------------------------------
# primitive claims
# ---------------------------------------------------------------------------
def _check_membership(payload: dict[str, Any]) -> None:
    query = decode_query(payload["query"])
    relations = decode_relations(payload["instance"])
    answer = decode_tuple(payload["answer"])
    member = bool(payload.get("member", True))
    witness = payload.get("witness")
    if member and witness is not None and isinstance(
        query, ConjunctiveQuery
    ):
        mapping = decode_mapping(witness)
        mapped = tuple(mapping.get(var) for var in query.head_vars)
        if mapped != answer:
            raise ClaimFailure(
                f"witness maps the head to {mapped!r}, not {answer!r}"
            )
        problem = replay.check_mapping(query.atoms, mapping, relations)
        if problem is not None:
            raise ClaimFailure(f"witness does not replay: {problem}")
        return
    if replay.holds(query, relations, answer) != member:
        raise ClaimFailure(
            f"naive evaluation says {answer!r} is "
            f"{'not ' if member else ''}an answer"
        )


def _check_query_output(payload: dict[str, Any]) -> None:
    query = decode_query(payload["query"])
    relations = decode_relations(payload["instance"])
    expected = {decode_tuple(row) for row in payload["output"]}
    actual = replay.eval_query(query, relations)
    if actual != expected:
        extra = sorted(actual - expected, key=repr)[:3]
        missing = sorted(expected - actual, key=repr)[:3]
        raise ClaimFailure(
            f"output mismatch: unexpected {extra!r}, missing {missing!r}"
        )


def _check_hom_witness(payload: dict[str, Any]) -> None:
    atoms = [decode_atom(atom) for atom in payload["atoms"]]
    relations = decode_relations(payload["target"])
    mapping = decode_mapping(payload["mapping"])
    problem = replay.check_mapping(atoms, mapping, relations)
    if problem is not None:
        raise ClaimFailure(problem)


def _check_no_hom(payload: dict[str, Any]) -> None:
    atoms = [decode_atom(atom) for atom in payload["atoms"]]
    relations = decode_relations(payload["target"])
    fixed = (
        decode_mapping(payload["fixed"])
        if payload.get("fixed") is not None
        else None
    )
    found = next(replay.match(atoms, relations, fixed), None)
    if found is not None:
        raise ClaimFailure(
            f"a homomorphism exists after all: {found!r}"
        )


def _check_instance_subset(payload: dict[str, Any]) -> None:
    left = decode_relations(payload["left"])
    right = decode_relations(payload["right"])
    problem = replay.relations_subset(left, right)
    if problem is not None:
        raise ClaimFailure(problem)


def _check_view_image(payload: dict[str, Any]) -> None:
    views = decode_views(payload["views"])
    base = decode_relations(payload["base"])
    claimed = decode_relations(payload["image"])
    actual = replay.view_image(views, base)
    actual = {pred: rows for pred, rows in actual.items() if rows}
    claimed = {pred: rows for pred, rows in claimed.items() if rows}
    if actual != claimed:
        preds = sorted(
            set(actual) | set(claimed),
            key=lambda p: (actual.get(p) == claimed.get(p), p),
        )
        raise ClaimFailure(
            f"view image differs on {preds[0]!r}: "
            f"recomputed {sorted(actual.get(preds[0], ()), key=repr)[:3]!r}, "
            f"claimed {sorted(claimed.get(preds[0], ()), key=repr)[:3]!r}"
        )


def _cq_contained_in(
    disjunct: ConjunctiveQuery,
    right: UCQ,
    witness: Optional[tuple[int, dict[str, Any]]],
) -> None:
    canon = replay.canonical_relations(disjunct)
    answer = replay.frozen_head(disjunct)
    if witness is not None:
        index, mapping = witness
        if not 0 <= index < len(right.disjuncts):
            raise ClaimFailure(f"witness disjunct index {index} is out of range")
        target = right.disjuncts[index]
        mapped = tuple(mapping.get(var) for var in target.head_vars)
        if mapped != answer:
            raise ClaimFailure(
                f"containment witness maps head to {mapped!r}, "
                f"expected {answer!r}"
            )
        problem = replay.check_mapping(target.atoms, mapping, canon)
        if problem is not None:
            raise ClaimFailure(
                f"containment witness does not replay: {problem}"
            )
        return
    if not replay.holds(right, canon, answer):
        raise ClaimFailure(
            f"disjunct {disjunct!r} is not contained in the right side"
        )


def _check_ucq_containment(payload: dict[str, Any]) -> None:
    left = as_ucq(decode_query(payload["left"]))
    right = as_ucq(decode_query(payload["right"]))
    witnesses = payload.get("witnesses")
    for position, disjunct in enumerate(left.disjuncts):
        witness = None
        if witnesses is not None:
            entry = witnesses[position] if position < len(witnesses) else None
            if entry is not None:
                witness = (entry[0], decode_mapping(entry[1]))
        _cq_contained_in(disjunct, right, witness)


def _check_tree_decomposition(payload: dict[str, Any]) -> None:
    relations = decode_relations(payload["facts"])
    bags = [
        frozenset(decode_term(term) for term in bag)
        for bag in payload["bags"]
    ]
    edges = [tuple(edge) for edge in payload["edges"]]
    width = int(payload["width"])
    if not bags:
        raise ClaimFailure("a decomposition needs at least one bag")
    for index, bag in enumerate(bags):
        if len(bag) > width + 1:
            raise ClaimFailure(
                f"bag #{index} has {len(bag)} elements; width "
                f"{width} allows {width + 1}"
            )
    # every fact fits in one bag
    for pred in sorted(relations):
        for row in relations[pred]:
            elements = set(row)
            if not any(elements <= bag for bag in bags):
                raise ClaimFailure(
                    f"fact {pred}{row!r} fits in no bag"
                )
    # the edges form a tree over the bags
    parent = list(range(len(bags)))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for left_bag, right_bag in edges:
        if not (0 <= left_bag < len(bags) and 0 <= right_bag < len(bags)):
            raise ClaimFailure(f"edge ({left_bag}, {right_bag}) out of range")
        left_root, right_root = find(left_bag), find(right_bag)
        if left_root == right_root:
            raise ClaimFailure("the bag graph contains a cycle")
        parent[left_root] = right_root
    if len({find(node) for node in range(len(bags))}) != 1:
        raise ClaimFailure("the bag graph is not connected")
    # running intersection: bags holding an element form a subtree
    adjacency: dict[int, set[int]] = {i: set() for i in range(len(bags))}
    for left_bag, right_bag in edges:
        adjacency[left_bag].add(right_bag)
        adjacency[right_bag].add(left_bag)
    elements = set().union(*bags) if bags else set()
    for element in elements:
        holding = {i for i, bag in enumerate(bags) if element in bag}
        start = next(iter(holding))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if neighbor in holding and neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        if seen != holding:
            raise ClaimFailure(
                f"bags holding {element!r} are not connected"
            )


# ---------------------------------------------------------------------------
# composite claims
# ---------------------------------------------------------------------------
def _check_not_determined(payload: dict[str, Any]) -> None:
    query = decode_query(payload["query"])
    views = decode_views(payload["views"])
    instance1 = decode_relations(payload["instance1"])
    instance2 = decode_relations(payload["instance2"])
    answer = decode_tuple(payload["answer"])
    if not replay.holds(query, instance1, answer):
        raise ClaimFailure(
            f"{answer!r} is not an answer of Q on the first instance"
        )
    if replay.holds(query, instance2, answer):
        raise ClaimFailure(
            f"{answer!r} is an answer of Q on the second instance too"
        )
    image1 = replay.view_image(views, instance1)
    image2 = replay.view_image(views, instance2)
    problem = replay.relations_subset(image1, image2)
    if problem is not None:
        raise ClaimFailure(
            f"view images are not ⊆-related: {problem}"
        )


def _unfold_over_views(rewriting: UCQ, views: ViewSet) -> UCQ:
    """The checker's own syntactic unfolding of ``R`` over CQ/UCQ views."""
    fresh = count()
    view_names = set(views.names())
    disjuncts: list[ConjunctiveQuery] = []
    for outer in rewriting.disjuncts:
        bodies: list[tuple[Atom, ...]] = [()]
        for atom in outer.atoms:
            if atom.pred not in view_names:
                bodies = [body + (atom,) for body in bodies]
                continue
            definition = views[atom.pred].definition
            if isinstance(definition, DatalogQuery):
                raise ClaimFailure(
                    f"view {atom.pred} has a recursive definition; "
                    "exact unfolding is impossible"
                )
            grown: list[tuple[Atom, ...]] = []
            for inner in as_ucq(definition).disjuncts:
                renaming = {
                    var: Variable(f"_c{next(fresh)}")
                    for var in inner.variables()
                }
                head = tuple(renaming[var] for var in inner.head_vars)
                atoms = tuple(a.substitute(renaming) for a in inner.atoms)
                mapping: dict[Variable, object] = {}
                ok = True
                for head_var, arg in zip(head, atom.args):
                    if mapping.setdefault(head_var, arg) != arg:
                        ok = False
                        break
                if not ok:
                    raise ClaimFailure(
                        f"cannot unfold {atom!r}: repeated head variable "
                        f"in the definition of {atom.pred}"
                    )
                expanded = tuple(a.substitute(mapping) for a in atoms)
                for body in bodies:
                    grown.append(body + expanded)
                    if len(grown) > UNFOLD_LIMIT:
                        raise ClaimFailure(
                            f"unfolding exceeds {UNFOLD_LIMIT} disjuncts"
                        )
            bodies = grown
        for body in bodies:
            if not body:
                raise ClaimFailure("unfolding produced an atom-free disjunct")
            disjuncts.append(ConjunctiveQuery(
                outer.head_vars, body, f"{outer.name}↓"
            ))
            if len(disjuncts) > UNFOLD_LIMIT:
                raise ClaimFailure(
                    f"unfolding exceeds {UNFOLD_LIMIT} disjuncts"
                )
    return UCQ(tuple(disjuncts), f"{rewriting.name}↓")


def _check_monotone_rewriting(payload: dict[str, Any]) -> None:
    query = decode_query(payload["query"])
    views = decode_views(payload["views"])
    rewriting = as_ucq(decode_query(payload["rewriting"]))
    unfolded = _unfold_over_views(rewriting, views)
    # soundness: every unfolding of R∘V is contained in Q, checked on
    # canonical databases with naive evaluation (exact for CQ/UCQ/Datalog)
    for disjunct in unfolded.disjuncts:
        canon = replay.canonical_relations(disjunct)
        answer = replay.frozen_head(disjunct)
        if not replay.holds(query, canon, answer):
            raise ClaimFailure(
                f"unsound: unfolded disjunct {disjunct!r} escapes Q"
            )
    # completeness: on each disjunct's canonical database the rewriting
    # recovers the frozen answer from the view image (with monotonicity
    # this lifts to all instances)
    if isinstance(query, DatalogQuery):
        raise ClaimFailure(
            "exact completeness needs a CQ/UCQ query; use a "
            "rewriting_sample claim for Datalog queries"
        )
    for disjunct in as_ucq(query).disjuncts:
        canon = replay.canonical_relations(disjunct)
        answer = replay.frozen_head(disjunct)
        image = replay.view_image(views, canon)
        if not replay.holds(rewriting, image, answer):
            raise ClaimFailure(
                f"incomplete: the canonical database of {disjunct!r} "
                "loses its answer through the views"
            )


def _check_rewriting_sample(payload: dict[str, Any]) -> None:
    from repro.core.schema import Schema
    from repro.rewriting.verification import random_instances
    from repro.certify.serialize import relations_from_instance

    query = decode_query(payload["query"])
    views = decode_views(payload["views"])
    rewriting = decode_query(payload["rewriting"])
    schema = Schema({
        pred: int(arity)
        for pred, arity in payload["schema"].items()
    })
    trials = int(payload.get("trials", 25))
    seed = int(payload.get("seed", 0))
    for index, instance in enumerate(
        random_instances(schema, trials, seed)
    ):
        relations = relations_from_instance(instance)
        expected = replay.eval_query(query, relations)
        got = replay.eval_query(
            rewriting, replay.view_image(views, relations)
        )
        if expected != got:
            raise ClaimFailure(
                f"sample #{index} (seed {seed}) disagrees: "
                f"Q gives {sorted(expected, key=repr)[:3]!r}, "
                f"R∘V gives {sorted(got, key=repr)[:3]!r}"
            )


def _frozen_term(term: object) -> object:
    from repro.core.cq import CanonConst

    return CanonConst(term.name) if isinstance(term, Variable) else term


def _replay_subsumption(general: Rule, specific: Rule) -> Optional[str]:
    """Replay ``rule_subsumes(general, specific)`` independently."""
    if general.head.pred != specific.head.pred:
        return "head predicates differ"
    if general.head.arity != specific.head.arity:
        return "head arities differ"
    frozen_body: Relations = {}
    for atom in specific.body:
        frozen_body.setdefault(atom.pred, set()).add(
            tuple(_frozen_term(term) for term in atom.args)
        )
    binding: dict[Variable, object] = {}
    for g_term, s_term in zip(general.head.args, specific.head.args):
        target = _frozen_term(s_term)
        if isinstance(g_term, Variable):
            if binding.setdefault(g_term, target) != target:
                return "head variables cannot be unified"
        elif g_term != s_term:
            return f"head constants differ: {g_term!r} vs {s_term!r}"
    if not replay.has_match(general.body, frozen_body, binding):
        return "no homomorphism of the subsuming body into the dropped rule"
    return None


def _is_recursive(rules: tuple[Rule, ...]) -> bool:
    """Own cycle check on the head→body predicate graph (plain DFS)."""
    idb = {rule.head.pred for rule in rules}
    edges: dict[str, set[str]] = {pred: set() for pred in idb}
    for rule in rules:
        for atom in rule.body:
            if atom.pred in idb:
                edges[rule.head.pred].add(atom.pred)
    state: dict[str, int] = {}

    def visit(node: str) -> bool:
        state[node] = 1
        for child in edges[node]:
            mark = state.get(child, 0)
            if mark == 1 or (mark == 0 and visit(child)):
                return True
        state[node] = 2
        return False

    return any(state.get(pred, 0) == 0 and visit(pred) for pred in idb)


def _check_bounded_unfolding(payload: dict[str, Any]) -> None:
    from repro.core.schema import Schema
    from repro.rewriting.verification import random_instances
    from repro.certify.serialize import relations_from_instance

    program = decode_program(payload["program"])
    goal = payload["goal"]
    pairs = [tuple(pair) for pair in payload["pairs"]]
    ucq = as_ucq(decode_query(payload["ucq"]))
    rules = program.rules
    dropped: set[int] = set()
    for dropped_index, subsuming_index in pairs:
        if not (
            0 <= dropped_index < len(rules)
            and 0 <= subsuming_index < len(rules)
        ):
            raise ClaimFailure(
                f"rule pair ({dropped_index}, {subsuming_index}) "
                "is out of range"
            )
        if subsuming_index in dropped:
            raise ClaimFailure(
                f"rule #{subsuming_index} subsumes #{dropped_index} "
                "but was itself dropped earlier"
            )
        problem = _replay_subsumption(
            rules[subsuming_index], rules[dropped_index]
        )
        if problem is not None:
            raise ClaimFailure(
                f"rule #{dropped_index} is not subsumed by "
                f"#{subsuming_index}: {problem}"
            )
        dropped.add(dropped_index)
    remainder = tuple(
        rule for index, rule in enumerate(rules) if index not in dropped
    )
    if _is_recursive(remainder):
        raise ClaimFailure(
            "the program stays recursive after the claimed removals"
        )
    if goal not in {rule.head.pred for rule in remainder}:
        raise ClaimFailure(f"goal {goal!r} lost its rules")
    # the UCQ is sound for the peeled program (exact, canonical dbs)
    for disjunct in ucq.disjuncts:
        canon = replay.canonical_relations(disjunct)
        state = replay.naive_fixpoint(remainder, canon)
        if replay.frozen_head(disjunct) not in state.get(goal, set()):
            raise ClaimFailure(
                f"UCQ disjunct {disjunct!r} is not derivable from the "
                "peeled program"
            )
    # the converse on a seeded sample
    schema = Schema({
        pred: int(arity)
        for pred, arity in payload["schema"].items()
    })
    trials = int(payload.get("trials", 20))
    seed = int(payload.get("seed", 0))
    for index, instance in enumerate(
        random_instances(schema, trials, seed)
    ):
        relations = relations_from_instance(instance)
        state = replay.naive_fixpoint(remainder, relations)
        datalog_rows = state.get(goal, set())
        ucq_rows = replay.eval_query(ucq, relations)
        if not datalog_rows <= ucq_rows:
            missing = sorted(datalog_rows - ucq_rows, key=repr)[:3]
            raise ClaimFailure(
                f"sample #{index} (seed {seed}): the program derives "
                f"{missing!r} which the UCQ misses"
            )


def _check_program_equivalence(payload: dict[str, Any]) -> None:
    from repro.certify.serialize import relations_from_instance
    from repro.core.schema import Schema
    from repro.rewriting.verification import random_instances

    original = decode_program(payload["original"])
    optimized = decode_program(payload["optimized"])
    goal = payload["goal"]
    original_idb = {rule.head.pred for rule in original.rules}
    if goal not in original_idb:
        raise ClaimFailure(
            f"goal {goal!r} has no rules in the original program"
        )
    idb = original_idb | {rule.head.pred for rule in optimized.rules}
    schema_map = {
        pred: int(arity) for pred, arity in payload["schema"].items()
    }
    clash = sorted(set(schema_map) & idb)
    if clash:
        raise ClaimFailure(
            f"schema names intensional predicate(s) {', '.join(clash)}; "
            "equivalence is only claimed over extensional instances"
        )
    # the schema must cover every extensional predicate either program
    # reads — a narrower schema would make the sampled check vacuous
    for label, program in (("original", original), ("optimized", optimized)):
        for rule in program.rules:
            for atom in rule.body:
                if atom.pred in idb:
                    continue
                if schema_map.get(atom.pred) != atom.arity:
                    raise ClaimFailure(
                        f"schema omits or mis-declares extensional "
                        f"{atom.pred}/{atom.arity} read by the "
                        f"{label} program"
                    )
    witnesses = [
        decode_relations(witness)
        for witness in payload.get("witnesses", [])
    ]
    for index, witness in enumerate(witnesses):
        stray = sorted(set(witness) - set(schema_map))
        if stray:
            raise ClaimFailure(
                f"witness #{index} uses non-schema predicate(s) "
                f"{', '.join(stray)}"
            )

    def compare(relations: Relations, label: str) -> None:
        left = replay.naive_fixpoint(
            original.rules, relations
        ).get(goal, set())
        right = replay.naive_fixpoint(
            optimized.rules, relations
        ).get(goal, set())
        if left != right:
            extra = sorted(right - left, key=repr)[:3]
            missing = sorted(left - right, key=repr)[:3]
            raise ClaimFailure(
                f"{label}: goal relations differ (optimized adds "
                f"{extra!r}, loses {missing!r})"
            )

    for index, witness in enumerate(witnesses):
        compare(witness, f"witness #{index}")
    schema = Schema(schema_map)
    trials = int(payload.get("trials", 12))
    seed = int(payload.get("seed", 0))
    for index, instance in enumerate(random_instances(schema, trials, seed)):
        compare(
            relations_from_instance(instance),
            f"sample #{index} (seed {seed})",
        )


def _check_ivm_state(payload: dict[str, Any]) -> None:
    program = decode_program(payload["program"])
    base = decode_relations(payload["base"])
    claimed = decode_relations(payload["state"])
    actual = replay.naive_fixpoint(program.rules, base)
    actual = {pred: rows for pred, rows in actual.items() if rows}
    claimed = {pred: rows for pred, rows in claimed.items() if rows}
    if actual != claimed:
        preds = sorted(
            set(actual) | set(claimed),
            key=lambda p: (actual.get(p) == claimed.get(p), p),
        )
        worst = preds[0]
        recomputed = actual.get(worst, set())
        shipped = claimed.get(worst, set())
        raise ClaimFailure(
            f"maintained state differs from the fixpoint on {worst!r}: "
            f"missing {sorted(recomputed - shipped, key=repr)[:3]!r}, "
            f"stale {sorted(shipped - recomputed, key=repr)[:3]!r}"
        )
    maintain = payload.get("maintain")
    if maintain is not None:
        # the maintainability claims are instance-independent, so they
        # can be re-derived from the decoded program alone (the
        # analysis shares no state with the emitting view)
        from repro.analysis.maintain import maintain_report

        expected = maintain_report(program).classification()
        for key, value in expected.items():
            if maintain.get(key) != value:
                raise ClaimFailure(
                    f"maintainability claim {key!r} differs from the "
                    f"re-derived classification: claimed "
                    f"{maintain.get(key)!r}, derived {value!r}"
                )


#: claim type -> checker
CLAIM_CHECKERS: dict[str, Callable[[dict], None]] = {
    "membership": _check_membership,
    "query_output": _check_query_output,
    "hom_witness": _check_hom_witness,
    "no_hom": _check_no_hom,
    "instance_subset": _check_instance_subset,
    "view_image": _check_view_image,
    "ucq_containment": _check_ucq_containment,
    "tree_decomposition": _check_tree_decomposition,
    "not_monotonically_determined": _check_not_determined,
    "monotone_rewriting": _check_monotone_rewriting,
    "rewriting_sample": _check_rewriting_sample,
    "bounded_unfolding": _check_bounded_unfolding,
    "program_equivalence": _check_program_equivalence,
    "ivm_state": _check_ivm_state,
}


def check_certificate(certificate: Any) -> CheckResult:
    """Validate one certificate; never raises on malformed input."""
    if not isinstance(certificate, dict):
        return CheckResult(False, 0, ("certificate is not an object",))
    if certificate.get("schema") not in SUPPORTED_SCHEMAS:
        supported = ", ".join(str(s) for s in sorted(SUPPORTED_SCHEMAS))
        return CheckResult(
            False,
            0,
            (
                f"unsupported certificate schema "
                f"{certificate.get('schema')!r} (supported: {supported})",
            ),
        )
    claims = certificate.get("claims")
    if not isinstance(claims, list) or not claims:
        return CheckResult(
            False, 0, ("certificate carries no claims",)
        )
    failures: list[str] = []
    for index, claim in enumerate(claims):
        if not isinstance(claim, dict) or "type" not in claim:
            failures.append(f"claim #{index}: not a typed object")
            continue
        kind = claim["type"]
        checker = CLAIM_CHECKERS.get(kind)
        if checker is None:
            failures.append(f"claim #{index}: unknown type {kind!r}")
            continue
        try:
            checker(claim)
        except ClaimFailure as exc:
            failures.append(f"claim #{index} ({kind}): {exc}")
        except (CertificateFormatError, KeyError, TypeError,
                ValueError, IndexError) as exc:
            failures.append(
                f"claim #{index} ({kind}): malformed payload ({exc})"
            )
    return CheckResult(not failures, len(claims), tuple(failures))
