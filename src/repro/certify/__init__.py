"""Machine-checkable certificates for determinacy & rewriting verdicts.

The subsystem splits along a trust boundary:

* :mod:`repro.certify.emit` — builders that *construct* certificates,
  free to use the engine's fast evaluation;
* :mod:`repro.certify.checker` + :mod:`repro.certify.replay` — the
  *independent* validator: naive fixpoint evaluation and direct
  homomorphism replay only, no engine fast paths;
* :mod:`repro.certify.serialize` — the JSON-safe tagged term codec
  shared by both sides.
"""

from repro.certify.checker import (
    CERT_SCHEMA,
    CLAIM_CHECKERS,
    SUPPORTED_SCHEMAS,
    CheckResult,
    check_certificate,
)
from repro.certify.emit import (
    certificate,
    claim_bounded_unfolding,
    claim_hom_witness,
    claim_ivm_state,
    claim_instance_subset,
    claim_membership,
    claim_monotone_rewriting,
    claim_no_hom,
    claim_not_determined,
    claim_program_equivalence,
    claim_query_output,
    claim_rewriting_sample,
    claim_tree_decomposition,
    claim_ucq_containment,
    claim_view_image,
)
from repro.certify.serialize import CertificateFormatError, OpaqueTerm

__all__ = [
    "CERT_SCHEMA",
    "CLAIM_CHECKERS",
    "SUPPORTED_SCHEMAS",
    "CertificateFormatError",
    "CheckResult",
    "OpaqueTerm",
    "certificate",
    "check_certificate",
    "claim_bounded_unfolding",
    "claim_hom_witness",
    "claim_ivm_state",
    "claim_instance_subset",
    "claim_membership",
    "claim_monotone_rewriting",
    "claim_no_hom",
    "claim_not_determined",
    "claim_program_equivalence",
    "claim_query_output",
    "claim_rewriting_sample",
    "claim_tree_decomposition",
    "claim_ucq_containment",
    "claim_view_image",
]
