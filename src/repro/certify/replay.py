"""The independent evaluator behind the certificate checker.

Deliberately *not* the engine: no positional indexes, no semi-naive
deltas, no stratified schedules, no join-plan caches.  Claims are
validated with exactly two primitives —

* :func:`match` — a direct backtracking search for homomorphisms of an
  atom list into plain relation data (``dict[str, set[tuple]]``),
  scanning whole relations;
* :func:`naive_fixpoint` — round-based naive Datalog evaluation on top
  of :func:`match`.

If the engine's fast paths were wrong, certificates checked here would
fail; that independence is the point of the subsystem.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional, Sequence, Union

from repro.core.atoms import Atom
from repro.core.cq import CanonConst, ConjunctiveQuery
from repro.core.datalog import DatalogQuery, Rule
from repro.core.terms import Variable
from repro.core.ucq import UCQ
from repro.certify.serialize import Relations

if TYPE_CHECKING:  # pragma: no cover - types only, keeps replay engine-free
    from repro.views.view import View

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]
Binding = dict[Variable, object]


def _bind(atom: Atom, row: tuple[Any, ...], binding: Binding) -> Optional[Binding]:
    """Extend ``binding`` so that ``atom`` maps onto ``row``, or None."""
    if len(row) != len(atom.args):
        return None
    out = dict(binding)
    for term, value in zip(atom.args, row):
        if isinstance(term, Variable):
            if out.setdefault(term, value) != value:
                return None
        elif term != value:
            return None
    return out


def match(
    atoms: Sequence[Atom],
    relations: Relations,
    binding: Optional[Binding] = None,
) -> Iterator[Binding]:
    """All homomorphisms of ``atoms`` into ``relations`` extending
    ``binding``.  Plain backtracking; atoms are picked most-bound-first
    (an ordering choice, not an index)."""

    def unbound(atom: Atom, current: Binding) -> int:
        return sum(
            1
            for term in atom.args
            if isinstance(term, Variable) and term not in current
        )

    def search(
        current: Binding, rest: tuple[Atom, ...]
    ) -> Iterator[Binding]:
        if not rest:
            yield current
            return
        pick = min(
            range(len(rest)), key=lambda i: unbound(rest[i], current)
        )
        atom, remaining = rest[pick], rest[:pick] + rest[pick + 1:]
        for row in relations.get(atom.pred, ()):
            extended = _bind(atom, row, current)
            if extended is not None:
                yield from search(extended, remaining)

    yield from search(dict(binding or {}), tuple(atoms))


def has_match(
    atoms: Sequence[Atom],
    relations: Relations,
    binding: Optional[Binding] = None,
) -> bool:
    return next(match(atoms, relations, binding), None) is not None


def check_mapping(
    atoms: Sequence[Atom], mapping: Binding, relations: Relations
) -> Optional[str]:
    """Replay a shipped homomorphism; the first violation, or None."""
    for atom in atoms:
        row = []
        for term in atom.args:
            if isinstance(term, Variable):
                if term not in mapping:
                    return f"variable {term!r} of {atom!r} is unmapped"
                row.append(mapping[term])
            else:
                row.append(term)
        if tuple(row) not in relations.get(atom.pred, set()):
            return (
                f"image {atom.pred}{tuple(row)!r} of {atom!r} is not a "
                "fact of the target"
            )
    return None


# ---------------------------------------------------------------------------
# naive Datalog
# ---------------------------------------------------------------------------
def _head_row(rule: Rule, binding: Binding) -> tuple[Any, ...]:
    return tuple(
        binding[term] if isinstance(term, Variable) else term
        for term in rule.head.args
    )


def naive_fixpoint(
    rules: Sequence[Rule], relations: Relations
) -> Relations:
    """Round-based naive evaluation until nothing new is derivable."""
    state: Relations = {
        pred: set(rows) for pred, rows in relations.items()
    }
    changed = True
    while changed:
        changed = False
        for rule in rules:
            # materialize before inserting: match() scans state's sets
            derived = [
                _head_row(rule, binding)
                for binding in match(rule.body, state)
            ]
            rows = state.setdefault(rule.head.pred, set())
            for row in derived:
                if row not in rows:
                    rows.add(row)
                    changed = True
    return state


def closure_violation(
    rules: Sequence[Rule], relations: Relations
) -> Optional[str]:
    """The first rule instantiation ``relations`` is not closed under."""
    for index, rule in enumerate(rules):
        rows = relations.get(rule.head.pred, set())
        for binding in match(rule.body, relations):
            row = _head_row(rule, binding)
            if row not in rows:
                return (
                    f"rule #{index} derives {rule.head.pred}{row!r} "
                    "which the claimed model is missing"
                )
    return None


# ---------------------------------------------------------------------------
# query evaluation
# ---------------------------------------------------------------------------
def eval_cq(
    cq: ConjunctiveQuery, relations: Relations
) -> set[tuple[Any, ...]]:
    return {
        tuple(binding[var] for var in cq.head_vars)
        for binding in match(cq.atoms, relations)
    }


def eval_query(
    query: QueryLike, relations: Relations
) -> set[tuple[Any, ...]]:
    """Evaluate any query shape with the naive primitives only."""
    if isinstance(query, ConjunctiveQuery):
        return eval_cq(query, relations)
    if isinstance(query, UCQ):
        out: set[tuple] = set()
        for disjunct in query.disjuncts:
            out |= eval_cq(disjunct, relations)
        return out
    state = naive_fixpoint(query.program.rules, relations)
    return set(state.get(query.goal, set()))


def holds(query: QueryLike, relations: Relations, answer: tuple[Any, ...]) -> bool:
    if isinstance(query, ConjunctiveQuery):
        if len(answer) != len(query.head_vars):
            return False
        binding: Binding = {}
        for var, value in zip(query.head_vars, answer):
            if binding.setdefault(var, value) != value:
                return False  # repeated head variable, conflicting values
        return has_match(query.atoms, relations, binding)
    if isinstance(query, UCQ):
        return any(
            holds(disjunct, relations, answer)
            for disjunct in query.disjuncts
        )
    return answer in eval_query(query, relations)


def view_image(views: Iterable["View"], relations: Relations) -> Relations:
    """``V(I)`` recomputed naively for every view definition shape."""
    out: Relations = {}
    for view in views:
        out[view.name] = eval_query(view.definition, relations)
    return out


def relations_subset(
    left: Relations, right: Relations
) -> Optional[str]:
    """The first fact of ``left`` missing from ``right``, or None."""
    for pred in sorted(left):
        missing = left[pred] - right.get(pred, set())
        if missing:
            sample = min(missing, key=repr)
            return f"fact {pred}{sample!r} of the left instance is missing"
    return None


# ---------------------------------------------------------------------------
# canonical databases (the checker's own freezing)
# ---------------------------------------------------------------------------
def canonical_relations(cq: ConjunctiveQuery) -> Relations:
    """``canondb(Q)``: variables frozen to :class:`CanonConst`."""
    frozen: Relations = {}
    for atom in cq.atoms:
        row = tuple(
            CanonConst(term.name) if isinstance(term, Variable) else term
            for term in atom.args
        )
        frozen.setdefault(atom.pred, set()).add(row)
    return frozen


def frozen_head(cq: ConjunctiveQuery) -> tuple[Any, ...]:
    return tuple(CanonConst(var.name) for var in cq.head_vars)
