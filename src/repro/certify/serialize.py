"""The certificate term codec: JSON-safe, tagged, lossless-enough.

Instances and queries in this codebase use arbitrary hashable Python
values as constants — strings, ints, tuples like ``("z", i, j)`` from
the figure constructions, :class:`~repro.core.cq.CanonConst` frozen
variables, ``"∃null"`` inversion nulls.  Certificates must survive a
JSON round trip, so every term is encoded as a small tagged array:

========  =======================================
tag       value
========  =======================================
``null``  (no payload)
``bool``  ``true``/``false``
``int``   the integer
``float`` the float
``str``   the string
``tuple`` list of encoded terms
``var``   a :class:`~repro.core.terms.Variable` name
``canon`` a :class:`~repro.core.cq.CanonConst` name
``opq``   ``repr()`` of anything else (opaque)
========  =======================================

Opaque terms decode to :class:`OpaqueTerm`, which compares by its text;
a claim is checked entirely inside the decoded world, so equality is
preserved as long as ``repr`` is stable — which the frozen dataclasses
used as instance elements guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.core.atoms import Atom
from repro.core.cq import CanonConst, ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.terms import Variable
from repro.core.ucq import UCQ
from repro.views.view import View, ViewSet

QueryLike = Union[ConjunctiveQuery, UCQ, DatalogQuery]

#: plain relation data: the replay checker's instance representation
Relations = dict[str, set[tuple]]


@dataclass(frozen=True, slots=True)
class OpaqueTerm:
    """A constant that only survives serialization as its ``repr``."""

    text: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


class CertificateFormatError(ValueError):
    """A certificate payload does not decode."""


# ---------------------------------------------------------------------------
# terms
# ---------------------------------------------------------------------------
def encode_term(term: Any) -> list[Any]:
    if term is None:
        return ["null"]
    if isinstance(term, bool):
        return ["bool", term]
    if isinstance(term, int):
        return ["int", term]
    if isinstance(term, float):
        return ["float", term]
    if isinstance(term, str):
        return ["str", term]
    if isinstance(term, tuple):
        return ["tuple", [encode_term(part) for part in term]]
    if isinstance(term, Variable):
        return ["var", term.name]
    if isinstance(term, CanonConst):
        return ["canon", term.name]
    if isinstance(term, OpaqueTerm):
        return ["opq", term.text]
    return ["opq", repr(term)]


def decode_term(payload: Any) -> Any:
    if not isinstance(payload, list) or not payload:
        raise CertificateFormatError(f"bad term encoding: {payload!r}")
    tag = payload[0]
    if tag == "null":
        return None
    if tag in ("bool", "int", "float", "str"):
        return payload[1]
    if tag == "tuple":
        return tuple(decode_term(part) for part in payload[1])
    if tag == "var":
        return Variable(payload[1])
    if tag == "canon":
        return CanonConst(payload[1])
    if tag == "opq":
        return OpaqueTerm(payload[1])
    raise CertificateFormatError(f"unknown term tag {tag!r}")


# ---------------------------------------------------------------------------
# atoms, rules, programs
# ---------------------------------------------------------------------------
def encode_atom(atom: Atom) -> list[Any]:
    return [atom.pred, [encode_term(term) for term in atom.args]]


def decode_atom(payload: Any) -> Atom:
    if not isinstance(payload, list) or len(payload) != 2:
        raise CertificateFormatError(f"bad atom encoding: {payload!r}")
    pred, args = payload
    return Atom(pred, tuple(decode_term(term) for term in args))


def encode_rule(rule: Rule) -> dict[str, Any]:
    return {
        "head": encode_atom(rule.head),
        "body": [encode_atom(atom) for atom in rule.body],
    }


def decode_rule(payload: Any) -> Rule:
    try:
        return Rule(
            decode_atom(payload["head"]),
            tuple(decode_atom(atom) for atom in payload["body"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CertificateFormatError(f"bad rule encoding: {exc}") from None


def encode_program(program: DatalogProgram) -> dict[str, Any]:
    return {"rules": [encode_rule(rule) for rule in program.rules]}


def decode_program(payload: Any) -> DatalogProgram:
    try:
        rules = payload["rules"]
    except (KeyError, TypeError):
        raise CertificateFormatError(
            f"bad program encoding: {payload!r}"
        ) from None
    return DatalogProgram(tuple(decode_rule(rule) for rule in rules))


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------
def encode_query(query: QueryLike) -> dict[str, Any]:
    if isinstance(query, ConjunctiveQuery):
        return {
            "kind": "cq",
            "name": query.name,
            "head": [encode_term(var) for var in query.head_vars],
            "atoms": [encode_atom(atom) for atom in query.atoms],
        }
    if isinstance(query, UCQ):
        return {
            "kind": "ucq",
            "name": query.name,
            "disjuncts": [encode_query(d) for d in query.disjuncts],
        }
    if isinstance(query, DatalogQuery):
        return {
            "kind": "datalog",
            "name": query.name,
            "goal": query.goal,
            "program": encode_program(query.program),
        }
    raise CertificateFormatError(f"unencodable query {query!r}")


def decode_query(payload: Any) -> QueryLike:
    try:
        kind = payload["kind"]
    except (KeyError, TypeError):
        raise CertificateFormatError(
            f"bad query encoding: {payload!r}"
        ) from None
    if kind == "cq":
        head = tuple(decode_term(var) for var in payload["head"])
        if not all(isinstance(var, Variable) for var in head):
            raise CertificateFormatError("CQ head must be variables")
        return ConjunctiveQuery(
            head,
            tuple(decode_atom(atom) for atom in payload["atoms"]),
            payload.get("name", "Q"),
        )
    if kind == "ucq":
        return UCQ(
            tuple(decode_query(d) for d in payload["disjuncts"]),
            payload.get("name", "Q"),
        )
    if kind == "datalog":
        return DatalogQuery(
            decode_program(payload["program"]),
            payload["goal"],
            payload.get("name", "Q"),
        )
    raise CertificateFormatError(f"unknown query kind {kind!r}")


# ---------------------------------------------------------------------------
# views
# ---------------------------------------------------------------------------
def encode_views(views: ViewSet) -> list[Any]:
    return [
        {"name": view.name, "definition": encode_query(view.definition)}
        for view in views
    ]


def decode_views(payload: Any) -> ViewSet:
    try:
        return ViewSet([
            View(entry["name"], decode_query(entry["definition"]))
            for entry in payload
        ])
    except (KeyError, TypeError) as exc:
        raise CertificateFormatError(f"bad views encoding: {exc}") from None


# ---------------------------------------------------------------------------
# instances and relation data
# ---------------------------------------------------------------------------
def encode_instance(instance: Instance) -> list[Any]:
    facts = [
        [pred, [encode_term(term) for term in row]]
        for pred in sorted(instance.predicates())
        for row in sorted(instance.tuples(pred), key=repr)
    ]
    return facts


def decode_relations(payload: Any) -> Relations:
    out: Relations = {}
    if not isinstance(payload, list):
        raise CertificateFormatError(
            f"bad instance encoding: {payload!r}"
        )
    for entry in payload:
        if not isinstance(entry, list) or len(entry) != 2:
            raise CertificateFormatError(f"bad fact encoding: {entry!r}")
        pred, row = entry
        out.setdefault(pred, set()).add(
            tuple(decode_term(term) for term in row)
        )
    return out


def encode_relations(relations: Relations) -> list[Any]:
    """Encode plain relation data in the same shape as an instance."""
    return [
        [pred, [encode_term(term) for term in row]]
        for pred in sorted(relations)
        for row in sorted(relations[pred], key=repr)
    ]


def relations_from_instance(instance: Instance) -> Relations:
    return {
        pred: set(instance.tuples(pred))
        for pred in instance.predicates()
    }


def encode_tuple(row: tuple[Any, ...]) -> list[Any]:
    return [encode_term(term) for term in row]


def decode_tuple(payload: Any) -> tuple[Any, ...]:
    if not isinstance(payload, list):
        raise CertificateFormatError(f"bad tuple encoding: {payload!r}")
    return tuple(decode_term(term) for term in payload)


def encode_mapping(mapping: dict[str, Any]) -> list[Any]:
    return sorted(
        (
            [encode_term(var), encode_term(value)]
            for var, value in mapping.items()
        ),
        key=repr,
    )


def decode_mapping(payload: Any) -> dict[str, Any]:
    if not isinstance(payload, list):
        raise CertificateFormatError(f"bad mapping encoding: {payload!r}")
    out = {}
    for entry in payload:
        if not isinstance(entry, list) or len(entry) != 2:
            raise CertificateFormatError(
                f"bad mapping entry: {entry!r}"
            )
        out[decode_term(entry[0])] = decode_term(entry[1])
    return out
