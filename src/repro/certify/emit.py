"""Certificate builders.

Emitters sit on the *trusted* side of the boundary: they are free to use
the engine's fast evaluation to construct claims, because everything
they emit is later re-derived by :mod:`repro.certify.checker` with the
naive :mod:`repro.certify.replay` primitives.  Each ``claim_*`` builder
produces one claim payload whose keys match the corresponding checker
exactly; :func:`certificate` wraps a claim list into the versioned
envelope.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

from repro.certify.serialize import (
    Relations,
    encode_atom,
    encode_instance,
    encode_mapping,
    encode_program,
    encode_query,
    encode_relations,
    encode_term,
    encode_tuple,
    encode_views,
)
from repro.core.atoms import Atom
from repro.core.datalog import DatalogProgram
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.core.ucq import UCQ
from repro.views.view import ViewSet

#: bump together with :data:`repro.certify.checker.CERT_SCHEMA`
#: (history: 1 = initial 12-claim vocabulary; 2 = adds
#: ``program_equivalence`` for the certified optimizer; 3 = adds
#: ``ivm_state`` for incrementally maintained materializations)
CERT_SCHEMA = 3

InstanceLike = Union[Instance, Relations]


def _instance_payload(data: InstanceLike) -> list[Any]:
    if isinstance(data, Instance):
        return encode_instance(data)
    return encode_relations(data)


def certificate(
    claims: Sequence[dict[str, Any]], meta: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """Wrap claims in the versioned certificate envelope."""
    payload: dict[str, Any] = {
        "schema": CERT_SCHEMA,
        "claims": list(claims),
    }
    if meta:
        payload["meta"] = dict(meta)
    return payload


# ---------------------------------------------------------------------------
# primitive claims
# ---------------------------------------------------------------------------
def claim_membership(
    query: Any,
    instance: InstanceLike,
    answer: tuple[Any, ...],
    member: bool = True,
    witness: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """``answer ∈ Q(instance)`` (or ``∉`` with ``member=False``)."""
    payload = {
        "type": "membership",
        "query": encode_query(query),
        "instance": _instance_payload(instance),
        "answer": encode_tuple(answer),
        "member": bool(member),
    }
    if witness is not None:
        payload["witness"] = encode_mapping(witness)
    return payload


def claim_query_output(
    query: Any,
    instance: Instance,
    output: Optional[set[tuple[Any, ...]]] = None,
) -> dict[str, Any]:
    """``Q(instance)`` equals ``output`` (engine-computed when omitted)."""
    if output is None:
        output = query.evaluate(instance)
    return {
        "type": "query_output",
        "query": encode_query(query),
        "instance": _instance_payload(instance),
        "output": [encode_tuple(row) for row in sorted(output, key=repr)],
    }


def claim_hom_witness(
    atoms: Sequence[Atom], target: InstanceLike, mapping: dict[str, Any]
) -> dict[str, Any]:
    """The shipped ``mapping`` is a homomorphism of ``atoms`` into
    ``target``."""
    return {
        "type": "hom_witness",
        "atoms": [encode_atom(atom) for atom in atoms],
        "target": _instance_payload(target),
        "mapping": encode_mapping(mapping),
    }


def claim_no_hom(
    atoms: Sequence[Atom],
    target: InstanceLike,
    fixed: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """No homomorphism of ``atoms`` into ``target`` extends ``fixed``."""
    payload = {
        "type": "no_hom",
        "atoms": [encode_atom(atom) for atom in atoms],
        "target": _instance_payload(target),
    }
    if fixed is not None:
        payload["fixed"] = encode_mapping(fixed)
    return payload


def claim_instance_subset(
    left: InstanceLike, right: InstanceLike
) -> dict[str, Any]:
    """Every fact of ``left`` is a fact of ``right``."""
    return {
        "type": "instance_subset",
        "left": _instance_payload(left),
        "right": _instance_payload(right),
    }


def claim_view_image(
    views: ViewSet,
    base: Instance,
    image: Optional[Instance] = None,
) -> dict[str, Any]:
    """``V(base)`` equals ``image`` (engine-computed when omitted)."""
    if image is None:
        image = views.image(base)
    return {
        "type": "view_image",
        "views": encode_views(views),
        "base": _instance_payload(base),
        "image": _instance_payload(image),
    }


def claim_ucq_containment(
    left: Any,
    right: Any,
    witnesses: Optional[
        Sequence[Optional[tuple[int, dict[str, Any]]]]
    ] = None,
) -> dict[str, Any]:
    """``left ⊑ right``; optional per-disjunct ``(index, hom)`` witnesses
    are replayed by the checker instead of searched."""
    payload = {
        "type": "ucq_containment",
        "left": encode_query(left),
        "right": encode_query(right),
    }
    if witnesses is not None:
        payload["witnesses"] = [
            None
            if entry is None
            else [entry[0], encode_mapping(entry[1])]
            for entry in witnesses
        ]
    return payload


def claim_tree_decomposition(
    facts: InstanceLike,
    bags: Sequence[Sequence[object]],
    edges: Sequence[tuple[int, int]],
    width: int,
) -> dict[str, Any]:
    """``bags``/``edges`` are a tree decomposition of ``facts`` within
    ``width``."""
    return {
        "type": "tree_decomposition",
        "facts": _instance_payload(facts),
        "bags": [
            [encode_term(element) for element in sorted(bag, key=repr)]
            for bag in bags
        ],
        "edges": [[int(a), int(b)] for a, b in edges],
        "width": int(width),
    }


# ---------------------------------------------------------------------------
# composite claims
# ---------------------------------------------------------------------------
def claim_not_determined(
    query: Any,
    views: ViewSet,
    instance1: InstanceLike,
    instance2: InstanceLike,
    answer: tuple[Any, ...],
) -> dict[str, Any]:
    """The counterexample pair refuting monotonic determinacy:
    ``answer ∈ Q(I₁)``, ``answer ∉ Q(I₂)``, ``V(I₁) ⊆ V(I₂)``."""
    return {
        "type": "not_monotonically_determined",
        "query": encode_query(query),
        "views": encode_views(views),
        "instance1": _instance_payload(instance1),
        "instance2": _instance_payload(instance2),
        "answer": encode_tuple(answer),
    }


def claim_monotone_rewriting(
    query: Any, views: ViewSet, rewriting: Any
) -> dict[str, Any]:
    """``rewriting ∘ V ≡ Q`` with exact canonical-database checks
    (requires CQ/UCQ query and views; the checker re-unfolds itself)."""
    return {
        "type": "monotone_rewriting",
        "query": encode_query(query),
        "views": encode_views(views),
        "rewriting": encode_query(rewriting),
    }


def claim_rewriting_sample(
    query: Any,
    views: ViewSet,
    rewriting: Any,
    schema: Optional[Schema] = None,
    trials: int = 25,
    seed: int = 0,
) -> dict[str, Any]:
    """``R(V(I)) = Q(I)`` on a seeded random instance stream — sampled
    evidence for shapes where exact equivalence is out of reach."""
    if schema is None:
        from repro.rewriting.verification import _base_schema

        schema = _base_schema(query, views)
    return {
        "type": "rewriting_sample",
        "query": encode_query(query),
        "views": encode_views(views),
        "rewriting": encode_query(rewriting),
        "schema": {
            pred: schema.arity(pred) for pred in sorted(schema.names())
        },
        "trials": int(trials),
        "seed": int(seed),
    }


def claim_bounded_unfolding(
    program: DatalogProgram,
    goal: str,
    pairs: Sequence[tuple[int, int]],
    ucq: UCQ,
    schema: Optional[Schema] = None,
    trials: int = 20,
    seed: int = 0,
) -> dict[str, Any]:
    """The boundedness story: each ``(dropped, subsuming)`` pair replays
    as a rule subsumption, the remainder is nonrecursive, and ``ucq`` is
    its unfolding (soundness exact, converse sampled)."""
    if schema is None:
        schema = Schema({
            atom.pred: atom.arity
            for rule in program.rules
            for atom in rule.body
            if atom.pred not in program.idb_predicates()
        })
    return {
        "type": "bounded_unfolding",
        "program": encode_program(program),
        "goal": goal,
        "pairs": [[int(a), int(b)] for a, b in pairs],
        "ucq": encode_query(ucq),
        "schema": {
            pred: schema.arity(pred) for pred in sorted(schema.names())
        },
        "trials": int(trials),
        "seed": int(seed),
    }


def claim_program_equivalence(
    original: DatalogProgram,
    optimized: DatalogProgram,
    goal: str,
    schema: Optional[Schema] = None,
    witnesses: Sequence[Relations] = (),
    trials: int = 12,
    seed: int = 0,
    pass_name: Optional[str] = None,
) -> dict[str, Any]:
    """``optimized`` and ``original`` agree on the goal relation, over
    instances of the extensional ``schema`` (schema-2 claim).

    The contract is deliberately scoped to extensional instances: the
    optimizer's renaming passes (magic sets, inlining, specialization)
    are not answer-preserving on instances that supply facts for
    intensional predicates, and no decision procedure evaluates on such
    instances.  The checker replays both programs with naive fixpoint
    evaluation on the shipped ``witnesses`` (targeted, canonical-db
    style) and on a seeded random-instance stream over ``schema``.
    """
    if schema is None:
        idb = original.idb_predicates() | optimized.idb_predicates()
        relations: dict[str, int] = {}
        for program in (original, optimized):
            for rule in program.rules:
                for atom in rule.body:
                    if atom.pred not in idb:
                        relations[atom.pred] = atom.arity
        schema = Schema(relations)
    payload = {
        "type": "program_equivalence",
        "original": encode_program(original),
        "optimized": encode_program(optimized),
        "goal": goal,
        "schema": {
            pred: schema.arity(pred) for pred in sorted(schema.names())
        },
        "witnesses": [encode_relations(witness) for witness in witnesses],
        "trials": int(trials),
        "seed": int(seed),
    }
    if pass_name is not None:
        payload["pass"] = pass_name
    return payload


def claim_ivm_state(
    program: DatalogProgram,
    base: InstanceLike,
    state: InstanceLike,
    maintain: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """The maintained materialization equals ``FPEval(program, base)``
    (schema-3 claim).

    Emitted by :meth:`repro.ivm.MaterializedView.certificate` after a
    maintenance round: whatever sequence of counting/DRed updates
    produced ``state``, the checker re-derives the fixpoint of ``base``
    with the naive replay evaluator (which shares no code with the
    incremental engine) and demands exact equality.

    ``maintain`` optionally folds in the maintainability
    classification (:meth:`repro.analysis.maintain.MaintainReport.
    classification`): per-predicate strategy, insert-monotone and
    counting-safe claims, all instance-independent, which the checker
    re-derives from the decoded program and compares exactly.
    """
    payload: dict[str, Any] = {
        "type": "ivm_state",
        "program": encode_program(program),
        "base": _instance_payload(base),
        "state": _instance_payload(state),
    }
    if maintain is not None:
        payload["maintain"] = dict(maintain)
    return payload
