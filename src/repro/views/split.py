"""Splitting disconnected CQ views into connected ones (proof of Thm 2).

Lemma 3's treewidth bound needs *connected* view definitions.  The
paper argues this is without loss of generality: a disconnected view
``V(x̄, ȳ) = Q1(x̄) ∧ Q2(ȳ)`` is interdefinable with the connected views
``V1(x̄) = Q1(x̄) ∧ ∃ȳ Q2(ȳ)`` and ``V2(ȳ) = (∃x̄ Q1(x̄)) ∧ Q2(ȳ)`` —
``V`` is their product, and each is a projection of ``V``.

:func:`split_disconnected_views` performs the transformation;
:func:`reconstruct_image` recovers the original view image from the
split image (the paper's "we can restore V as their product").

Components with no answer variables stay attached to every part (they
are Boolean guards).
"""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.gaifman import gaifman_graph
from repro.core.instance import Instance
from repro.views.view import View, ViewSet

import networkx as nx


def _components(cq: ConjunctiveQuery) -> list[tuple[Atom, ...]]:
    """Gaifman-connected components of the body, as atom groups."""
    canon = cq.canonical_database()
    graph = gaifman_graph(canon)
    element_component: dict = {}
    for index, comp in enumerate(nx.connected_components(graph)):
        for element in comp:
            element_component[element] = index
    groups: dict[int, list[Atom]] = {}
    nullary: list[Atom] = []
    for atom in cq.atoms:
        if not atom.args:
            nullary.append(atom)
            continue
        first = atom.args[0]
        key = element_component[
            _freeze(first)
        ]
        groups.setdefault(key, []).append(atom)
    parts = [tuple(group) for _k, group in sorted(groups.items())]
    if nullary:
        if parts:
            parts = [part + tuple(nullary) for part in parts]
        else:
            parts = [tuple(nullary)]
    return parts


def _freeze(term):
    from repro.core.cq import CanonConst
    from repro.core.terms import Variable

    if isinstance(term, Variable):
        return CanonConst(term.name)
    return term


def split_disconnected_views(views: ViewSet) -> tuple[ViewSet, dict]:
    """Replace each disconnected CQ view by its connected parts.

    Returns ``(new_views, plan)`` where ``plan`` maps each original
    view name to the list of ``(part name, head positions)`` pairs its
    image is the product of.  Connected views (and non-CQ views) pass
    through unchanged with a singleton plan.
    """
    new_views: list[View] = []
    plan: dict[str, list[tuple[str, tuple[int, ...]]]] = {}
    for view in views:
        definition = view.definition
        if not isinstance(definition, ConjunctiveQuery):
            new_views.append(view)
            plan[view.name] = [
                (view.name, tuple(range(view.arity)))
            ]
            continue
        parts = _components(definition)
        if len(parts) <= 1:
            new_views.append(view)
            plan[view.name] = [
                (view.name, tuple(range(view.arity)))
            ]
            continue
        part_entries: list[tuple[str, tuple[int, ...]]] = []
        for index, part_atoms in enumerate(parts):
            part_vars = set()
            for atom in part_atoms:
                part_vars |= atom.variables()
            head = tuple(
                (pos, var)
                for pos, var in enumerate(definition.head_vars)
                if var in part_vars
            )
            # the other components become Boolean guards (∃-closed)
            guards = tuple(
                atom
                for other_index, other in enumerate(parts)
                if other_index != index
                for atom in other
            )
            part_name = f"{view.name}·{index}"
            part_cq = ConjunctiveQuery(
                tuple(var for _pos, var in head),
                part_atoms + guards,
                part_name,
            )
            new_views.append(View(part_name, part_cq))
            part_entries.append(
                (part_name, tuple(pos for pos, _var in head))
            )
        plan[view.name] = part_entries
    return ViewSet(new_views), plan


def reconstruct_image(
    split_image: Instance, plan: dict, original: ViewSet
) -> Instance:
    """Rebuild the original view image from the split image.

    Each original view's rows are the product of its parts' rows,
    re-assembled by head position.
    """
    out = Instance()
    for view in original:
        entries = plan[view.name]
        if len(entries) == 1 and entries[0][0] == view.name:
            for row in split_image.tuples(view.name):
                out.add_tuple(view.name, row)
            continue
        # product over parts
        partial_rows: list[dict[int, object]] = [{}]
        feasible = True
        for part_name, positions in entries:
            rows = split_image.tuples(part_name)
            if not rows:
                feasible = False
                break
            next_rows = []
            for partial in partial_rows:
                for row in rows:
                    merged = dict(partial)
                    merged.update(zip(positions, row))
                    next_rows.append(merged)
            partial_rows = next_rows
        if not feasible:
            continue
        for partial in partial_rows:
            out.add_tuple(
                view.name,
                tuple(partial[i] for i in range(view.arity)),
            )
    return out
