"""Views, view images and the inverse-rules algorithm."""

from repro.views.view import View, ViewSet, atomic_views, cq_view
from repro.views.split import (
    reconstruct_image,
    split_disconnected_views,
)
from repro.views.inverse_rules import (
    SkolemTerm,
    certain_answers,
    chase_with_inverse_rules,
    inverse_rules,
    inverse_rules_rewriting,
)

__all__ = [
    "View", "ViewSet", "atomic_views", "cq_view", "SkolemTerm",
    "certain_answers", "chase_with_inverse_rules", "inverse_rules",
    "inverse_rules_rewriting", "reconstruct_image",
    "split_disconnected_views",
]
