"""Views and view images (§2).

A :class:`View` is a named query (CQ, UCQ or Datalog) over the base
schema; a :class:`ViewSet` bundles views and computes view images
``V(I)``.  The view set also exposes the combined program ``Π_V`` used by
Theorems 1–4 (IDBs renamed apart, goal predicates identified with the view
predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.core.terms import Variable
from repro.core.ucq import UCQ

ViewDefinition = Union[ConjunctiveQuery, UCQ, DatalogQuery]


@dataclass(frozen=True)
class View:
    """A view ``(V, Q_V)``: a view relation with its defining query."""

    name: str
    definition: ViewDefinition

    @property
    def arity(self) -> int:
        return self.definition.arity

    def fragment(self) -> str:
        """One of ``CQ``, ``UCQ``, ``MDL``, ``FGDL``, ``Datalog``."""
        if isinstance(self.definition, ConjunctiveQuery):
            return "CQ"
        if isinstance(self.definition, UCQ):
            return "UCQ"
        return self.definition.fragment()

    def output(self, instance: Instance) -> set[tuple]:
        return self.definition.evaluate(instance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"View({self.name}/{self.arity}: {self.fragment()})"


class ViewSet:
    """A finite collection of views over a common base schema."""

    def __init__(self, views: Iterable[View]) -> None:
        self._views = list(views)
        names = [v.name for v in self._views]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate view names in {names}")

    def __iter__(self) -> Iterator[View]:
        return iter(self._views)

    def __len__(self) -> int:
        return len(self._views)

    def __getitem__(self, name: str) -> View:
        for view in self._views:
            if view.name == name:
                return view
        raise KeyError(name)

    def names(self) -> list[str]:
        return [v.name for v in self._views]

    def view_schema(self) -> Schema:
        """``Σ_V``: the schema of the view predicates."""
        return Schema({v.name: v.arity for v in self._views})

    def base_predicates(self) -> set[str]:
        """``Σ_B``: relations used by the definitions (EDBs only)."""
        preds: set[str] = set()
        for view in self._views:
            definition = view.definition
            if isinstance(definition, ConjunctiveQuery):
                preds |= definition.predicates()
            elif isinstance(definition, UCQ):
                preds |= definition.predicates()
            else:
                preds |= definition.program.edb_predicates()
        return preds

    def fragments(self) -> set[str]:
        return {v.fragment() for v in self._views}

    _FRAGMENT_RANK = {
        "CQ": 0, "UCQ": 1, "MDL": 2, "FGDL": 3,
        "nonrecursive": 3, "Datalog": 4,
    }

    def fragment(self) -> str:
        """Coarsest fragment over all views (for dispatching checkers)."""
        frags = self.fragments() or {"CQ"}
        top = max(frags, key=self._FRAGMENT_RANK.__getitem__)
        return "FGDL" if top == "nonrecursive" else top

    def image(self, instance: Instance) -> Instance:
        """The view image ``V(I)`` (§2)."""
        out = Instance()
        for view in self._views:
            for row in view.output(instance):
                out.add_tuple(view.name, row)
        return out

    def all_cq_definitions(self) -> bool:
        return all(isinstance(v.definition, ConjunctiveQuery) for v in self)

    def combined_program(self) -> tuple[DatalogProgram, dict[str, str]]:
        """``Π_V``: union of all view programs with disjoint IDBs.

        Every definition is first coerced to Datalog (a CQ view becomes a
        single rule, a UCQ view one rule per disjunct).  Goal predicates
        are identified with the view names.  Returns the program and a map
        ``view name → view name`` (kept for interface symmetry).
        """
        rules: list[Rule] = []
        for index, view in enumerate(self._views):
            definition = view.definition
            if isinstance(definition, ConjunctiveQuery):
                rules.append(
                    Rule(Atom(view.name, definition.head_vars), definition.atoms)
                )
            elif isinstance(definition, UCQ):
                for disjunct in definition.disjuncts:
                    rules.append(
                        Rule(Atom(view.name, disjunct.head_vars), disjunct.atoms)
                    )
            else:
                renamed = definition.relabel_idbs(f"_v{index}")
                for rule in renamed.program.rules:
                    rules.append(rule)
                goal_pred = renamed.goal
                goal_rules = [r for r in rules if r.head.pred == goal_pred]
                for rule in goal_rules:
                    rules.remove(rule)
                    rules.append(Rule(Atom(view.name, rule.head.args), rule.body))
                # goal may also occur in bodies (recursive goal)
                rules = [
                    r.relabel_predicates({goal_pred: view.name}) for r in rules
                ]
        return DatalogProgram(tuple(rules)), {v.name: v.name for v in self}

    def max_definition_radius(self) -> float:
        """Greatest radius of a CQ definition (Lemma 3's ``r``)."""
        radii = [
            v.definition.radius()
            for v in self
            if isinstance(v.definition, ConjunctiveQuery)
        ]
        return max(radii, default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ViewSet({', '.join(map(repr, self._views))})"


def cq_view(name: str, cq: ConjunctiveQuery) -> View:
    return View(name, cq)


def atomic_views(predicates: dict[str, int], prefix: str = "V") -> list[View]:
    """Identity views ``V_R(x̄) ← R(x̄)`` for the given predicates.

    Used by the constructions of §6 and Prop. 9 ("atomic views").
    """
    out = []
    for pred, arity in predicates.items():
        args = tuple(Variable(f"x{i}") for i in range(arity))
        out.append(
            View(
                f"{prefix}{pred}",
                ConjunctiveQuery(args, (Atom(pred, args),), f"{prefix}{pred}"),
            )
        )
    return out
