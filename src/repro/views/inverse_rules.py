"""The inverse-rules algorithm (Duschka–Genesereth–Levy [14]).

Given CQ views ``V`` over a base schema and a Datalog query ``Q``, the
TGDs ``V(x̄) → ∃ȳ Q_V(x̄, ȳ)`` are skolemized into *inverse rules*; the
logic program ``Q ∪ Γ_V`` computes the certain answers of ``Q`` over any
view instance (Theorem 10 in the appendix).  De-functionalization turns
the logic program into plain Datalog over *annotated* predicates, and —
when ``Q`` is frontier-guarded — a guard-completion step restores
frontier-guardedness (appendix, "Rewritability results inherited from
prior work").

Three public entry points:

* :func:`chase_with_inverse_rules` — materialize the skolem chase of a
  view instance (one application per view fact; the chase of inverse
  rules is non-recursive).
* :func:`certain_answers` — evaluate ``Q`` over the chased instance and
  filter out answers mentioning skolem nulls.
* :func:`inverse_rules_rewriting` — the de-functionalized Datalog query
  over the view schema (the paper's Datalog rewriting when ``Q`` is
  monotonically determined over ``V``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Optional

from repro.core.atoms import Atom
from repro.core.cq import ConjunctiveQuery
from repro.core.datalog import DatalogProgram, DatalogQuery, Rule
from repro.core.instance import Instance
from repro.core.terms import Variable, is_variable
from repro.views.view import ViewSet


@dataclass(frozen=True, slots=True)
class SkolemTerm:
    """A ground skolem value ``f(c1, ..., cn)`` (a labelled null)."""

    function: str
    args: tuple

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(map(repr, self.args))
        return f"{self.function}({inner})"


@dataclass(frozen=True)
class InverseRule:
    """One skolemized inverse rule ``A' ← V(x̄)``.

    ``head`` is an atom of the base schema whose arguments are either
    head positions of the view (ints) or skolem function names (str) to
    be applied to the full view tuple.
    """

    view: str
    view_arity: int
    head_pred: str
    head_spec: tuple  # each entry: ("pos", i) | ("skolem", fname) | ("const", c)

    def fire(self, row: tuple) -> Atom:
        """The head fact produced for one view fact."""
        args = []
        for kind, payload in self.head_spec:
            if kind == "pos":
                args.append(row[payload])
            elif kind == "skolem":
                args.append(SkolemTerm(payload, row))
            else:
                args.append(payload)
        return Atom(self.head_pred, tuple(args))


def _require_cq_views(views: ViewSet) -> None:
    if not views.all_cq_definitions():
        raise ValueError(
            "inverse rules are defined for CQ views; got "
            f"{sorted(views.fragments())}"
        )


def inverse_rules(views: ViewSet) -> list[InverseRule]:
    """The inverse rules of a set of CQ views."""
    _require_cq_views(views)
    out: list[InverseRule] = []
    for view in views:
        cq: ConjunctiveQuery = view.definition  # type: ignore[assignment]
        head_pos = {v: i for i, v in enumerate(cq.head_vars)}
        skolem_of = {
            v: f"f_{view.name}_{v.name}"
            for v in sorted(cq.existential_variables(), key=lambda v: v.name)
        }
        for atom in cq.atoms:
            spec = []
            for term in atom.args:
                if is_variable(term):
                    if term in head_pos:
                        spec.append(("pos", head_pos[term]))
                    else:
                        spec.append(("skolem", skolem_of[term]))
                else:
                    spec.append(("const", term))
            out.append(
                InverseRule(view.name, view.arity, atom.pred, tuple(spec))
            )
    return out


def chase_with_inverse_rules(
    views: ViewSet, view_instance: Instance
) -> Instance:
    """Apply every inverse rule to every view fact.

    The result is a base-schema instance whose view image contains the
    input (sound-view semantics); skolem nulls appear as
    :class:`SkolemTerm` elements.
    """
    rules = inverse_rules(views)
    out = Instance()
    for rule in rules:
        for row in view_instance.tuples(rule.view):
            out.add(rule.fire(row))
    return out


def has_skolem(row: tuple) -> bool:
    return any(isinstance(v, SkolemTerm) for v in row)


def certain_answers(
    query: DatalogQuery, views: ViewSet, view_instance: Instance
) -> set[tuple]:
    """Certain answers of ``Q`` w.r.t. ``V`` over a view instance.

    ``⋂ { Q(I) : V(I) ⊇ J }`` — computed as ``Q`` over the inverse-rule
    chase with skolem-mentioning tuples removed (Theorem 10, [14]).
    """
    chased = chase_with_inverse_rules(views, view_instance)
    return {row for row in query.evaluate(chased) if not has_skolem(row)}


# ---------------------------------------------------------------------------
# De-functionalization
# ---------------------------------------------------------------------------

_PLAIN = "p"


@dataclass(frozen=True, slots=True)
class _Annotation:
    """Per-position annotation of a predicate: plain or a skolem function."""

    entries: tuple  # each entry: _PLAIN or (fname, arity)

    def suffix(self) -> str:
        parts = []
        for entry in self.entries:
            parts.append(_PLAIN if entry == _PLAIN else entry[0])
        return "·".join(parts)


def _annotated_name(pred: str, annotation: _Annotation) -> str:
    return f"{pred}⟨{annotation.suffix()}⟩"


def _flatten_atom(
    atom: Atom, assignment: dict, view_arities: dict[str, int]
) -> tuple[str, tuple]:
    """Annotated predicate name + flattened argument tuple for an atom.

    ``assignment`` maps each variable to ``_PLAIN`` or a skolem function
    name; skolem-annotated variables expand to the component variables
    ``v·1 ... v·k``.
    """
    entries = []
    args: list = []
    for term in atom.args:
        if not is_variable(term):
            entries.append(_PLAIN)
            args.append(term)
            continue
        choice = assignment[term]
        if choice == _PLAIN:
            entries.append(_PLAIN)
            args.append(term)
        else:
            fname, arity = choice
            entries.append((fname, arity))
            args.extend(Variable(f"{term.name}·{j}") for j in range(arity))
    return _annotated_name(atom.pred, _Annotation(tuple(entries))), tuple(args)


def _skolem_functions(views: ViewSet) -> dict[str, int]:
    """All skolem function names with their arities (= view arities)."""
    out: dict[str, int] = {}
    for view in views:
        cq: ConjunctiveQuery = view.definition  # type: ignore[assignment]
        for v in cq.existential_variables():
            out[f"f_{view.name}_{v.name}"] = view.arity
    return out


def _defunctionalized_inverse_rules(
    views: ViewSet,
) -> list[Rule]:
    """Annotated Datalog versions of the inverse rules."""
    rules = []
    for inv in inverse_rules(views):
        view_vars = tuple(Variable(f"w{i}") for i in range(inv.view_arity))
        entries = []
        args: list = []
        for kind, payload in inv.head_spec:
            if kind == "pos":
                entries.append(_PLAIN)
                args.append(view_vars[payload])
            elif kind == "skolem":
                entries.append((payload, inv.view_arity))
                args.extend(view_vars)
            else:
                entries.append(_PLAIN)
                args.append(payload)
        name = _annotated_name(inv.head_pred, _Annotation(tuple(entries)))
        rules.append(
            Rule(Atom(name, tuple(args)), (Atom(inv.view, view_vars),))
        )
    return rules


def _annotated_query_rules(
    query: DatalogQuery, views: ViewSet
) -> list[Rule]:
    """All annotated versions of the query's rules."""
    skolems = sorted(_skolem_functions(views).items())
    choices: list = [_PLAIN] + [(f, a) for f, a in skolems]
    view_arities = {v.name: v.arity for v in views}
    out = []
    for rule in query.program.rules:
        rule_vars = sorted(rule.variables(), key=lambda v: v.name)
        for combo in product(choices, repeat=len(rule_vars)):
            assignment = dict(zip(rule_vars, combo))
            head_name, head_args = _flatten_atom(
                rule.head, assignment, view_arities
            )
            body = tuple(
                Atom(*_flatten_atom(atom, assignment, view_arities))
                for atom in rule.body
            )
            out.append(Rule(Atom(head_name, head_args), body))
    return out


def _prune_unproductive(
    rules: list[Rule], edb: set[str]
) -> list[Rule]:
    """Drop rules whose body mentions an IDB no kept rule can derive.

    Iterates to a fixpoint (a lightweight bottom-up reachability pass);
    essential because annotation enumeration produces many rules over
    annotated predicates that no inverse rule ever feeds.
    """
    kept = list(rules)
    changed = True
    while changed:
        derivable = {r.head.pred for r in kept} | edb
        filtered = [
            r
            for r in kept
            if all(a.pred in derivable for a in r.body)
        ]
        changed = len(filtered) != len(kept)
        kept = filtered
    return kept


def inverse_rules_rewriting(
    query: DatalogQuery,
    views: ViewSet,
    frontier_guard: bool = False,
    name: Optional[str] = None,
) -> DatalogQuery:
    """The de-functionalized inverse-rules Datalog query over ``Σ_V``.

    Computes the certain answers of ``query`` w.r.t. ``views`` on any
    view instance; when ``query`` is monotonically determined over
    ``views`` this is a Datalog rewriting ([14]; appendix of the paper).

    With ``frontier_guard=True`` each rule whose frontier is not guarded
    is split per producing inverse rule and the corresponding view atom
    conjoined, yielding a frontier-guarded program whenever the input
    query is FGDL (appendix construction).
    """
    inv_rules = _defunctionalized_inverse_rules(views)
    q_rules = _annotated_query_rules(query, views)
    goal_plain = _annotated_name(
        query.goal, _Annotation(tuple(_PLAIN for _ in range(query.arity)))
    )
    all_rules = _prune_unproductive(
        inv_rules + q_rules, set(views.names())
    )
    if not any(r.head.pred == goal_plain for r in all_rules):
        # Query can never produce a skolem-free answer: empty rewriting
        # (a rule over a never-populated relation "Never⊥").
        head_vars = tuple(Variable(f"x{i}") for i in range(query.arity))
        all_rules = all_rules + [
            Rule(Atom(goal_plain, head_vars), (Atom("Never⊥", head_vars),))
        ]
    if frontier_guard:
        all_rules = _guard_rules(all_rules, inv_rules, set(views.names()))
    return DatalogQuery(
        DatalogProgram(tuple(all_rules)),
        goal_plain,
        name or f"{query.name}_inv",
    )


def _guard_rules(
    rules: list[Rule], inv_rules: list[Rule], view_preds: set[str]
) -> list[Rule]:
    """Conjoin guarding view atoms (appendix guard-completion).

    For each rule whose head variables do not co-occur in a view atom of
    its body: find body atoms over inverse-rule-produced predicates
    containing all head variables; split the rule per producing inverse
    rule, conjoining that inverse rule's view atom (unified positionally).
    """
    producers: dict[str, list[Rule]] = {}
    for inv in inv_rules:
        producers.setdefault(inv.head.pred, []).append(inv)

    out: list[Rule] = []
    for rule in rules:
        frontier = rule.head.variables()
        if not frontier or any(
            a.pred in view_preds and frontier <= a.variables()
            for a in rule.body
        ):
            out.append(rule)
            continue
        guard_candidates = [
            a
            for a in rule.body
            if a.pred in producers and frontier <= a.variables()
        ]
        if not guard_candidates:
            out.append(rule)  # cannot guard (query not FGDL); keep as-is
            continue
        guard = guard_candidates[0]
        for index, producer in enumerate(producers[guard.pred]):
            # producer: guard.pred(formal...) <- V(w0..wk); unify
            # positionally, then fill unconstrained view variables fresh.
            unifier: dict = {}
            ok = True
            for formal, actual in zip(producer.head.args, guard.args):
                if is_variable(formal):
                    if formal in unifier and unifier[formal] != actual:
                        ok = False
                        break
                    unifier[formal] = actual
                elif formal != actual:
                    ok = False
                    break
            if not ok:
                continue
            view_formal = producer.body[0]
            for var in view_formal.variables():
                if var not in unifier:
                    unifier[var] = Variable(f"{var.name}·g{index}")
            view_atom = view_formal.substitute(unifier)
            out.append(Rule(rule.head, rule.body + (view_atom,)))
    return out
